// Metadata service (MDS + MDT) cost model.
//
// The paper deliberately minimizes metadata influence (N-1 shared file,
// Section III-B), but metadata latency is exactly what penalizes small data
// sizes (Fig. 2's left side) together with client ramp-up, and at high file
// counts the metadata path dominates end-to-end performance outright (the
// IO500's md phases).  Two models live here:
//
//   * The legacy *scalar* model: each operation costs a jittered latency
//     (createCost/openAllCost/statCost/unlinkCost).  This is the default
//     and keeps historical runs bitwise identical.
//
//   * The *queued* model (MetaParams::queued, DESIGN.md §2.10): every MDT
//     is a fluid resource with a concurrency ramp, and each operation is a
//     flow sized so the MDT saturates at the configured ops/s.  Metadata
//     ops then contend observably in virtual time, multiple MDTs shard the
//     namespace per directory (MdShardChooser), and per-MDT op counters
//     expose the shard balance.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <vector>

#include "beegfs/mdshard.hpp"
#include "beegfs/params.hpp"
#include "sim/fluid.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace beesim::beegfs {

/// Metadata operation kinds served by the queued model.
enum class MetaOpKind { kCreate, kOpen, kStat, kUnlink };

const char* metaOpName(MetaOpKind kind);

class MetaService {
 public:
  /// Capacity of a saturated MDT in the fluid model's MiB/s unit.  One
  /// operation of kind k is a flow of kSaturationMiBps/rate_k MiB, so the
  /// unit cancels: a saturated MDT completes rate_k ops/s regardless.
  static constexpr double kSaturationMiBps = 1024.0;

  MetaService(const MetaParams& params, util::Rng rng);

  // -- Scalar model (legacy; used when !queuedModel()). -------------------

  /// Latency of creating a file entry (rank 0 performs it).
  util::Seconds createCost();

  /// Latency experienced by `concurrentRanks` ranks opening the same file at
  /// once.  Opens are served concurrently by the MDS but contend on the MDT;
  /// the returned value is the time until the *last* open finishes (a mild
  /// logarithmic pile-up, SSD MDTs handle deep queues well).  Counts one
  /// served operation per rank.
  util::Seconds openAllCost(std::size_t concurrentRanks);

  /// Latency of one stat.
  util::Seconds statCost();

  /// Latency of one unlink.
  util::Seconds unlinkCost();

  // -- Queued model (MetaParams::queued). ---------------------------------

  bool queuedModel() const { return params_.queued; }
  std::size_t mdtCount() const { return static_cast<std::size_t>(params_.mdtCount); }

  /// Wire the service to its per-MDT fluid resources.  Called once by the
  /// Deployment constructor when the queued model is on; `mdtRes` must hold
  /// mdtCount() resources.
  void attach(sim::FluidSimulator& fluid, std::vector<sim::ResourceIndex> mdtRes);

  /// MDT owning `path` (hash of the parent directory, or round-robin; see
  /// MdShardKind).
  std::size_t shardOf(std::string_view path);

  /// Serve one operation against the MDT owning `path`; `done(at)` fires
  /// from inside the event loop when the operation completes.  Returns the
  /// shard the op landed on (callers account per-MDT work without a second
  /// chooser consultation).  Requires the queued model to be attached.
  std::size_t opAsync(MetaOpKind kind, std::string_view path,
                      std::function<void(util::Seconds)> done);

  /// Per-MDT saturation throughput of `kind` in ops/s.
  double rateFor(MetaOpKind kind) const;

  /// Concurrency ramp of one MDT: fraction of the saturation throughput
  /// reached at `queueDepth` outstanding operations (Hill-type curve; a
  /// single op runs at 1/saturationDepth of the rate).
  double rampFactor(double queueDepth) const;

  /// The fluid resource of MDT `shard` (attached queued model only).
  sim::ResourceIndex mdtResource(std::size_t shard) const;

  // -- Diagnostics. --------------------------------------------------------

  /// Total metadata operations served (both models).
  std::uint64_t opsServed() const { return ops_; }

  /// Operations served per MDT (all zero under the scalar model).
  const std::vector<std::uint64_t>& mdtOps() const { return mdtOps_; }

 private:
  util::Seconds jittered(util::Seconds base);

  MetaParams params_;
  util::Rng rng_;
  MdShardChooser shards_;
  /// Per-MDT jitter substreams.  Derived order-independently from the
  /// service's own stream (splitNamed), so the queued model consumes
  /// nothing from rng_ -- enabling it leaves the scalar stream, and every
  /// other deployment stream, byte-identical.
  std::vector<util::Rng> mdtRng_;
  sim::FluidSimulator* fluid_ = nullptr;
  std::vector<sim::ResourceIndex> mdtRes_;
  std::vector<std::uint64_t> mdtOps_;
  std::uint64_t ops_ = 0;
};

}  // namespace beesim::beegfs
