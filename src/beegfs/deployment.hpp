// Deployment: instantiates a BeeGFS system on a cluster inside the fluid
// simulator.
//
// It owns the per-component resources of the flow model:
//
//   client(node) -> node NIC -> [backbone] -> server NIC -> [OSS] -> OST
//
// and the stateful pieces: per-node client state (process count, ramp-up),
// per-target noisy devices, the management registry and the metadata
// service.  One Deployment == one booted file system; experiments build a
// fresh one per repetition (the harness does this) so no state leaks
// between runs.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "beegfs/meta.hpp"
#include "beegfs/mgmt.hpp"
#include "beegfs/params.hpp"
#include "sim/fluid.hpp"
#include "storage/variability.hpp"
#include "topology/cluster.hpp"
#include "util/rng.hpp"

namespace beesim::beegfs {

class Deployment {
 public:
  /// Builds all resources in `fluid`.  The ClusterConfig and params are
  /// copied; `rng` seeds the device-noise and metadata streams.
  Deployment(sim::FluidSimulator& fluid, topo::ClusterConfig cluster, BeegfsParams params,
             util::Rng rng, EnvironmentFactors environment = {});

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  const topo::ClusterConfig& cluster() const { return cluster_; }
  const BeegfsParams& params() const { return params_; }
  const EnvironmentFactors& environment() const { return environment_; }
  sim::FluidSimulator& fluid() { return fluid_; }

  ManagementService& mgmt() { return mgmt_; }
  const ManagementService& mgmt() const { return mgmt_; }
  MetaService& meta() { return meta_; }

  /// Resource path a write from `node` to `flatTarget` crosses.
  std::vector<sim::ResourceIndex> writePath(std::size_t node, std::size_t flatTarget) const;

  /// Resource path of a server-side forward from `fromTarget`'s host to
  /// `toTarget` (mirror replication and background resync).  Server NICs are
  /// full duplex: the transmit direction on the source host does not contend
  /// with the client traffic it receives, so the forward leg only crosses
  /// the backbone and the *receiving* host's NIC/OSS/OST.
  std::vector<sim::ResourceIndex> replicaPath(std::size_t fromTarget,
                                              std::size_t toTarget) const;

  // -- Client-state hooks used by the IOR runner. ------------------------

  /// Declare how many application processes run on `node` (affects the
  /// intra-node contention factor).
  void setNodeProcesses(std::size_t node, int processes);

  /// Record the instant the first I/O of a job starts on `node`; the client
  /// ramp-up curve is anchored there.  Idempotent (keeps the earliest).
  void markNodeJobStart(std::size_t node, util::Seconds at);

  /// Clear per-node job state (between repetitions when reusing a system).
  void resetNode(std::size_t node);

  /// Effective outstanding-request budget of one node given `ppn` processes
  /// (worker threads bound it; oversubscription erodes it).  This is the
  /// queue weight budget the IOR runner splits across a rank's flows.
  double nodeEffectiveInflight(std::size_t node, int ppn) const;

  // -- Fault-injection hooks (see src/faults/injector.hpp). ---------------

  /// Multiply a target's device capacity by `factor` (0 = dead OST, 1 =
  /// healthy, fractions = degraded media).  Takes effect at the next
  /// capacity evaluation; callers follow up with fluid().invalidateCapacities()
  /// so in-flight flows re-solve immediately.
  void setTargetHealth(std::size_t flatTarget, double factor);
  double targetHealth(std::size_t flatTarget) const;

  /// Multiply a storage host's NIC capacity by `factor` (0 = crashed OSS,
  /// fractions = degraded link).
  void setHostLinkHealth(std::size_t host, double factor);
  double hostLinkHealth(std::size_t host) const;

  // -- Resource accessors (exposed for tests and diagnostics). -----------
  sim::ResourceIndex clientResource(std::size_t node) const;
  sim::ResourceIndex nodeNicResource(std::size_t node) const;
  sim::ResourceIndex serverNicResource(std::size_t host) const;
  std::optional<sim::ResourceIndex> ossResource(std::size_t host) const;
  sim::ResourceIndex ostResource(std::size_t flatTarget) const;
  std::optional<sim::ResourceIndex> backboneResource() const { return backbone_; }
  /// Metadata targets (non-empty only under the queued MDS/MDT model).
  std::size_t mdtCount() const { return mdtRes_.size(); }
  sim::ResourceIndex mdtResource(std::size_t mdt) const;

 private:
  struct NodeState {
    int activeProcesses = 0;
    util::Seconds jobStart = -1.0;  // < 0: no job started yet
    double rampTauFactor = 1.0;     // per-job slow-start jitter (duration)
    double rampR0Factor = 1.0;      // per-job slow-start jitter (floor)
  };

  double clientContentionFactor(int processes) const;
  double clientRampFactor(const NodeState& state, util::Seconds now) const;

  sim::FluidSimulator& fluid_;
  topo::ClusterConfig cluster_;
  BeegfsParams params_;
  EnvironmentFactors environment_;
  ManagementService mgmt_;
  MetaService meta_;
  util::Rng clientRng_;

  // Stable storage for capacity callbacks (addresses must not move).
  std::vector<std::unique_ptr<NodeState>> nodeStates_;
  std::vector<std::unique_ptr<storage::NoisyDevice>> devices_;
  std::vector<std::unique_ptr<storage::NoisyDevice>> linkNoise_;

  // Fault-injection capacity multipliers (1.0 = healthy).  Addresses are
  // captured by the capacity callbacks, so the vectors are sized once in the
  // constructor and never resized.
  std::vector<double> targetHealth_;
  std::vector<double> hostLinkHealth_;

  std::vector<sim::ResourceIndex> clientRes_;
  std::vector<sim::ResourceIndex> nodeNicRes_;
  std::vector<sim::ResourceIndex> serverNicRes_;
  std::vector<std::optional<sim::ResourceIndex>> ossRes_;
  std::vector<sim::ResourceIndex> ostRes_;
  std::vector<sim::ResourceIndex> mdtRes_;
  std::optional<sim::ResourceIndex> backbone_;
};

/// Instantiate the storage::VariabilityModel described by a topology spec.
std::unique_ptr<storage::VariabilityModel> makeVariability(const topo::VariabilitySpec& spec);

}  // namespace beesim::beegfs
