// Target-choice heuristics (which OSTs a new file is striped over).
//
// The paper shows the heuristic matters enormously in Scenario 1: PlaFRIM's
// round-robin always produces a (1,3) allocation for the default stripe
// count of 4, pinning write bandwidth below 50% of the peak, while a
// balanced (2,2) choice would reach it (Section IV-C1, Lesson #4).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "beegfs/params.hpp"
#include "topology/cluster.hpp"
#include "util/rng.hpp"

namespace beesim::beegfs {

class ManagementService;

/// Eligibility predicate over flat target indices.  The filesystem passes
/// the mgmtd online-state here so choosers never pick a dead target; an
/// empty (default-constructed) filter means "every target is eligible".
using TargetFilter = std::function<bool(std::size_t flatIndex)>;

/// Strategy interface.  Implementations may keep state across create()
/// calls (the round-robin pointer does).
class TargetChooser {
 public:
  virtual ~TargetChooser() = default;

  /// Pick `count` distinct flat target indices for a new file.
  /// Preconditions: 1 <= count <= cluster.targetCount().
  std::vector<std::size_t> choose(std::size_t count, const topo::ClusterConfig& cluster,
                                  util::Rng& rng) {
    return choose(count, cluster, rng, TargetFilter{});
  }

  /// Filtered variant: only targets for which `eligible(flat)` holds may be
  /// picked.  Precondition (asserted): at least `count` eligible targets.
  /// With no filter -- or a filter that accepts everything -- every
  /// implementation consumes the rng identically to the unfiltered call, so
  /// healthy-cluster runs are bitwise-unchanged by the filtering machinery.
  virtual std::vector<std::size_t> choose(std::size_t count,
                                          const topo::ClusterConfig& cluster,
                                          util::Rng& rng,
                                          const TargetFilter& eligible) = 0;

  virtual ChooserKind kind() const = 0;
};

/// Deterministic round-robin over an explicit target order with a sliding
/// pointer that advances by `count` per create.
///
/// `raceProbability` models the create race observed on PlaFRIM: with that
/// probability a create reads the pointer but fails to advance it before the
/// next create reads it, so two files created back-to-back receive identical
/// target sets (the paper saw this for ~1/3 of concurrent-application
/// repetitions, Fig. 13).
class RoundRobinChooser final : public TargetChooser {
 public:
  RoundRobinChooser(std::vector<std::size_t> order, double raceProbability,
                    ChooserKind kind = ChooserKind::kRoundRobin);

  using TargetChooser::choose;
  std::vector<std::size_t> choose(std::size_t count, const topo::ClusterConfig& cluster,
                                  util::Rng& rng, const TargetFilter& eligible) override;
  ChooserKind kind() const override { return kind_; }

  std::size_t pointer() const { return pointer_; }
  void setPointer(std::size_t p);

  /// Randomize the initial pointer phase to `stride * k` for a uniform k.
  /// On a production system the pointer has been advanced by every file any
  /// user ever created, so an application observes an arbitrary phase; the
  /// stride encodes that the bulk of those creates used the system default
  /// stripe width (see BeegfsParams::rrPointerPhaseStride).  Reproduces the
  /// paper's observed per-count allocation sets (e.g. count 4 is *always*
  /// (1,3), count 2 alternates between (1,1) and (0,2)).
  void randomizePhase(util::Rng& rng, std::size_t stride);

 private:
  std::vector<std::size_t> order_;
  double raceProbability_;
  ChooserKind kind_;
  std::size_t pointer_ = 0;
};

/// BeeGFS default: uniformly random distinct targets.
class RandomChooser final : public TargetChooser {
 public:
  using TargetChooser::choose;
  std::vector<std::size_t> choose(std::size_t count, const topo::ClusterConfig& cluster,
                                  util::Rng& rng, const TargetFilter& eligible) override;
  ChooserKind kind() const override { return ChooserKind::kRandom; }
};

/// Lesson #4's recommendation: distribute the stripe as evenly as possible
/// across storage hosts (|count/hosts| or +1 per host), random within a
/// host.  When count does not divide evenly, the hosts receiving the extra
/// target are chosen at random.
class BalancedChooser final : public TargetChooser {
 public:
  using TargetChooser::choose;
  std::vector<std::size_t> choose(std::size_t count, const topo::ClusterConfig& cluster,
                                  util::Rng& rng, const TargetFilter& eligible) override;
  ChooserKind kind() const override { return ChooserKind::kBalanced; }
};

/// Decorator that biases target choice toward under-loaded storage hosts
/// using the per-host weights published by the management service (the
/// rebalance controller's "retarget" lever).
///
/// While every weight equals 1.0 (the mgmtd default) the wrapper delegates
/// verbatim to the inner chooser -- same picks, same rng consumption -- so
/// wrapping is free until a controller actually skews the weights.  With
/// skewed weights the stripe is apportioned across hosts by largest-remainder
/// quota on the weights (deterministic, no rng), then targets are drawn
/// uniformly within each host's eligible set and the result shuffled.
class WeightedChooser final : public TargetChooser {
 public:
  WeightedChooser(std::unique_ptr<TargetChooser> inner, const ManagementService& mgmt);

  using TargetChooser::choose;
  std::vector<std::size_t> choose(std::size_t count, const topo::ClusterConfig& cluster,
                                  util::Rng& rng, const TargetFilter& eligible) override;
  /// Reports the inner chooser's kind: the wrapper is a bias, not a policy.
  ChooserKind kind() const override { return inner_->kind(); }

  const TargetChooser& inner() const { return *inner_; }

 private:
  std::unique_ptr<TargetChooser> inner_;
  const ManagementService& mgmt_;
};

/// The target order PlaFRIM's deployed round-robin walks, reconstructed from
/// the paper's observation that count-4 creates always produce
/// (101,201,202,203) or (204,102,103,104) -- i.e. always a (1,3) placement.
std::vector<std::size_t> plafrimRoundRobinOrder(const topo::ClusterConfig& cluster);

/// Host-interleaved order 101,201,102,202,... (ablation: count-4 creates
/// would be balanced (2,2)).
std::vector<std::size_t> interleavedOrder(const topo::ClusterConfig& cluster);

/// Instantiate the chooser configured in `params` for `cluster`.
std::unique_ptr<TargetChooser> makeChooser(const BeegfsParams& params,
                                           const topo::ClusterConfig& cluster);

}  // namespace beesim::beegfs
