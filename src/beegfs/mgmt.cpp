#include "beegfs/mgmt.hpp"

#include "util/error.hpp"

namespace beesim::beegfs {

ManagementService::ManagementService(const topo::ClusterConfig& cluster,
                                     util::Bytes targetCapacity) {
  hostTargetCount_.resize(cluster.hosts.size());
  for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
    hostTargetCount_[h] = cluster.hosts[h].targets.size();
    for (std::size_t t = 0; t < cluster.hosts[h].targets.size(); ++t) {
      TargetEntry entry;
      entry.flatIndex = cluster.flatTargetIndex(h, t);
      entry.host = h;
      entry.indexInHost = t;
      entry.beegfsNum = cluster.beegfsTargetNum(entry.flatIndex);
      entry.name = cluster.hosts[h].targets[t].name;
      entry.capacity = targetCapacity;
      targets_.push_back(std::move(entry));
    }
  }
  // flatTargetIndex is row-major over hosts, so entries are already sorted by
  // flat index; assert the invariant the accessors rely on.
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    BEESIM_ASSERT(targets_[i].flatIndex == i, "registry order broken");
  }
}

const TargetEntry& ManagementService::target(std::size_t flatIndex) const {
  BEESIM_ASSERT(flatIndex < targets_.size(), "unknown target");
  return targets_[flatIndex];
}

std::vector<std::size_t> ManagementService::onlineTargets() const {
  std::vector<std::size_t> online;
  for (const auto& t : targets_) {
    if (t.online) online.push_back(t.flatIndex);
  }
  return online;
}

void ManagementService::setTargetOnline(std::size_t flatIndex, bool online) {
  BEESIM_ASSERT(flatIndex < targets_.size(), "unknown target");
  targets_[flatIndex].online = online;
}

void ManagementService::recordUsage(std::size_t flatIndex, util::Bytes bytes) {
  BEESIM_ASSERT(flatIndex < targets_.size(), "unknown target");
  auto& entry = targets_[flatIndex];
  if (entry.capacity > 0 && entry.used + bytes > entry.capacity) {
    throw util::ConfigError("target " + entry.name + " is full");
  }
  entry.used += bytes;
}

std::size_t ManagementService::targetsOnHost(std::size_t host) const {
  BEESIM_ASSERT(host < hostTargetCount_.size(), "unknown host");
  return hostTargetCount_[host];
}

}  // namespace beesim::beegfs
