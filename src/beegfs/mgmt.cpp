#include "beegfs/mgmt.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace beesim::beegfs {

namespace {
constexpr std::size_t kNoGroup = std::numeric_limits<std::size_t>::max();
}  // namespace

const char* hostHealthName(HostHealth state) {
  switch (state) {
    case HostHealth::kHealthy: return "healthy";
    case HostHealth::kSuspect: return "suspect";
    case HostHealth::kQuarantined: return "quarantined";
    case HostHealth::kProbation: return "probation";
  }
  return "?";
}

const char* mirrorStateName(MirrorState state) {
  switch (state) {
    case MirrorState::kGood: return "good";
    case MirrorState::kNeedsResync: return "needs-resync";
    case MirrorState::kBad: return "bad";
  }
  return "?";
}

ManagementService::ManagementService(const topo::ClusterConfig& cluster,
                                     util::Bytes targetCapacity) {
  hostTargetCount_.resize(cluster.hosts.size());
  hostWeights_.assign(cluster.hosts.size(), 1.0);
  hostHealth_.assign(cluster.hosts.size(), HostHealth::kHealthy);
  for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
    hostTargetCount_[h] = cluster.hosts[h].targets.size();
    for (std::size_t t = 0; t < cluster.hosts[h].targets.size(); ++t) {
      TargetEntry entry;
      entry.flatIndex = cluster.flatTargetIndex(h, t);
      entry.host = h;
      entry.indexInHost = t;
      entry.beegfsNum = cluster.beegfsTargetNum(entry.flatIndex);
      entry.name = cluster.hosts[h].targets[t].name;
      entry.capacity = targetCapacity;
      targets_.push_back(std::move(entry));
    }
  }
  // flatTargetIndex is row-major over hosts, so entries are already sorted by
  // flat index; assert the invariant the accessors rely on.
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    BEESIM_ASSERT(targets_[i].flatIndex == i, "registry order broken");
  }
}

const TargetEntry& ManagementService::target(std::size_t flatIndex) const {
  BEESIM_ASSERT(flatIndex < targets_.size(), "unknown target");
  return targets_[flatIndex];
}

std::vector<std::size_t> ManagementService::onlineTargets() const {
  std::vector<std::size_t> online;
  for (const auto& t : targets_) {
    if (t.online) online.push_back(t.flatIndex);
  }
  return online;
}

void ManagementService::setTargetOnline(std::size_t flatIndex, bool online) {
  BEESIM_ASSERT(flatIndex < targets_.size(), "unknown target");
  if (targets_[flatIndex].online == online) return;
  targets_[flatIndex].online = online;
  for (const auto& listener : listeners_) listener(flatIndex, online);
}

void ManagementService::recordUsage(std::size_t flatIndex, util::Bytes bytes) {
  BEESIM_ASSERT(flatIndex < targets_.size(), "unknown target");
  auto& entry = targets_[flatIndex];
  if (entry.capacity > 0 && entry.used + bytes > entry.capacity) {
    throw util::ConfigError("target " + entry.name + " is full");
  }
  entry.used += bytes;
}

std::size_t ManagementService::targetsOnHost(std::size_t host) const {
  BEESIM_ASSERT(host < hostTargetCount_.size(), "unknown host");
  return hostTargetCount_[host];
}

void ManagementService::setHostWeight(std::size_t host, double weight) {
  BEESIM_ASSERT(host < hostWeights_.size(), "unknown host");
  BEESIM_ASSERT(weight >= 0.0 && weight == weight && weight <= 1e12,
                "host weight must be finite and >= 0");
  hostWeights_[host] = weight;
}

double ManagementService::hostWeight(std::size_t host) const {
  BEESIM_ASSERT(host < hostWeights_.size(), "unknown host");
  return hostWeights_[host];
}

void ManagementService::resetHostWeights() {
  std::fill(hostWeights_.begin(), hostWeights_.end(), 1.0);
}

void ManagementService::setHostHealth(std::size_t host, HostHealth state) {
  BEESIM_ASSERT(host < hostHealth_.size(), "unknown host");
  hostHealth_[host] = state;
}

HostHealth ManagementService::hostHealth(std::size_t host) const {
  BEESIM_ASSERT(host < hostHealth_.size(), "unknown host");
  return hostHealth_[host];
}

bool ManagementService::anyHostQuarantined() const {
  return std::any_of(hostHealth_.begin(), hostHealth_.end(), [](HostHealth h) {
    return h == HostHealth::kQuarantined;
  });
}

std::size_t ManagementService::registerMirrorGroup(std::size_t primary,
                                                   std::size_t secondary) {
  if (primary >= targets_.size() || secondary >= targets_.size()) {
    throw util::ConfigError("mirror group references an unknown target");
  }
  if (targets_[primary].host == targets_[secondary].host) {
    throw util::ConfigError("mirror group members " + targets_[primary].name +
                            " and " + targets_[secondary].name +
                            " sit on the same host");
  }
  if (groupOfTarget_.empty()) groupOfTarget_.assign(targets_.size(), kNoGroup);
  for (const std::size_t member : {primary, secondary}) {
    if (groupOfTarget_[member] != kNoGroup) {
      throw util::ConfigError("target " + targets_[member].name +
                              " already belongs to a mirror group");
    }
  }
  MirrorGroup group;
  group.id = groups_.size();
  group.primary = primary;
  group.secondary = secondary;
  groupOfTarget_[primary] = group.id;
  groupOfTarget_[secondary] = group.id;
  groups_.push_back(group);
  return group.id;
}

const MirrorGroup& ManagementService::mirrorGroup(std::size_t id) const {
  BEESIM_ASSERT(id < groups_.size(), "unknown mirror group");
  return groups_[id];
}

MirrorGroup& ManagementService::mutableGroup(std::size_t id) {
  BEESIM_ASSERT(id < groups_.size(), "unknown mirror group");
  return groups_[id];
}

std::optional<std::size_t> ManagementService::mirrorGroupOf(
    std::size_t flatIndex) const {
  BEESIM_ASSERT(flatIndex < targets_.size(), "unknown target");
  if (flatIndex >= groupOfTarget_.size()) return std::nullopt;
  const std::size_t id = groupOfTarget_[flatIndex];
  if (id == kNoGroup) return std::nullopt;
  return id;
}

void ManagementService::failOverMirrorGroup(std::size_t id) {
  auto& group = mutableGroup(id);
  BEESIM_ASSERT(group.state == MirrorState::kGood,
                "failover would promote a stale or bad secondary");
  BEESIM_ASSERT(targets_[group.secondary].online,
                "failover would promote an offline secondary");
  std::swap(group.primary, group.secondary);
  group.state = MirrorState::kNeedsResync;
}

void ManagementService::reviveMirrorGroup(std::size_t id, std::size_t primary) {
  auto& group = mutableGroup(id);
  BEESIM_ASSERT(group.state == MirrorState::kBad, "group is not bad");
  BEESIM_ASSERT(primary == group.primary || primary == group.secondary,
                "revive target is not a member");
  BEESIM_ASSERT(targets_[primary].online, "revive target is offline");
  if (primary != group.primary) std::swap(group.primary, group.secondary);
  group.state = MirrorState::kNeedsResync;
}

void ManagementService::setMirrorState(std::size_t id, MirrorState state) {
  mutableGroup(id).state = state;
}

void ManagementService::addResyncDebt(std::size_t id, util::Bytes bytes) {
  mutableGroup(id).resyncDebt += bytes;
}

void ManagementService::settleResyncDebt(std::size_t id, util::Bytes bytes) {
  auto& group = mutableGroup(id);
  BEESIM_ASSERT(bytes <= group.resyncDebt, "settling more debt than owed");
  group.resyncDebt -= bytes;
}

void ManagementService::addTargetStateListener(TargetStateListener listener) {
  listeners_.push_back(std::move(listener));
}

std::vector<std::pair<std::size_t, std::size_t>> defaultMirrorPairs(
    const topo::ClusterConfig& cluster) {
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t h = 0; h + 1 < cluster.hosts.size(); h += 2) {
    const std::size_t count = std::min(cluster.hosts[h].targets.size(),
                                       cluster.hosts[h + 1].targets.size());
    for (std::size_t t = 0; t < count; ++t) {
      const std::size_t a = cluster.flatTargetIndex(h, t);
      const std::size_t b = cluster.flatTargetIndex(h + 1, t);
      // Alternate orientation so each host of the pair is primary for half
      // of its targets (balanced foreground load while healthy).
      if (pairs.size() % 2 == 0) {
        pairs.emplace_back(a, b);
      } else {
        pairs.emplace_back(b, a);
      }
    }
  }
  return pairs;
}

}  // namespace beesim::beegfs
