#include "beegfs/meta.hpp"

#include <cmath>
#include <utility>

#include "util/error.hpp"

namespace beesim::beegfs {

const char* metaOpName(MetaOpKind kind) {
  switch (kind) {
    case MetaOpKind::kCreate:
      return "create";
    case MetaOpKind::kOpen:
      return "open";
    case MetaOpKind::kStat:
      return "stat";
    case MetaOpKind::kUnlink:
      return "unlink";
  }
  BEESIM_ASSERT(false, "unknown metadata op kind");
  return "?";  // unreachable
}

MetaService::MetaService(const MetaParams& params, util::Rng rng)
    : params_(params),
      rng_(rng),
      shards_(params.shard, params.mdtCount >= 1 ? params.mdtCount : 1),
      mdtOps_(params.mdtCount >= 1 ? params.mdtCount : 1, 0) {
  BEESIM_ASSERT(params.createLatency >= 0.0, "create latency must be >= 0");
  BEESIM_ASSERT(params.openLatency >= 0.0, "open latency must be >= 0");
  BEESIM_ASSERT(params.statLatency >= 0.0, "stat latency must be >= 0");
  BEESIM_ASSERT(params.unlinkLatency >= 0.0, "unlink latency must be >= 0");
  BEESIM_ASSERT(params.jitterSigmaLog >= 0.0, "jitter sigma must be >= 0");
  BEESIM_ASSERT(params.mdtCount >= 1, "need at least one MDT");
  if (params.queued) {
    BEESIM_ASSERT(params.createRate > 0.0, "create rate must be > 0 ops/s");
    BEESIM_ASSERT(params.openRate > 0.0, "open rate must be > 0 ops/s");
    BEESIM_ASSERT(params.statRate > 0.0, "stat rate must be > 0 ops/s");
    BEESIM_ASSERT(params.unlinkRate > 0.0, "unlink rate must be > 0 ops/s");
    BEESIM_ASSERT(params.saturationDepth >= 1.0, "saturation depth must be >= 1");
    // Per-MDT jitter substreams are derived order-independently from the
    // service's own seed (splitNamed does not draw from the engine), so
    // wiring the queued model leaves the scalar stream untouched.
    mdtRng_.reserve(params.mdtCount);
    for (unsigned k = 0; k < params.mdtCount; ++k) {
      mdtRng_.push_back(rng_.splitNamed(k));
    }
  }
}

util::Seconds MetaService::jittered(util::Seconds base) {
  if (base <= 0.0) return 0.0;
  return base * rng_.logNormalMedian(1.0, params_.jitterSigmaLog);
}

util::Seconds MetaService::createCost() {
  ++ops_;
  return jittered(params_.createLatency);
}

util::Seconds MetaService::openAllCost(std::size_t concurrentRanks) {
  BEESIM_ASSERT(concurrentRanks >= 1, "need at least one rank");
  // The MDS serves one open per rank: diagnostics count all of them, not
  // one per call (the historical under-count).
  ops_ += concurrentRanks;
  // max of n i.i.d. latencies grows ~log(n); model that directly instead of
  // sampling n draws (the constant is folded into openLatency).
  const double pileUp = 1.0 + std::log(static_cast<double>(concurrentRanks));
  return jittered(params_.openLatency) * pileUp;
}

util::Seconds MetaService::statCost() {
  ++ops_;
  return jittered(params_.statLatency);
}

util::Seconds MetaService::unlinkCost() {
  ++ops_;
  return jittered(params_.unlinkLatency);
}

void MetaService::attach(sim::FluidSimulator& fluid,
                         std::vector<sim::ResourceIndex> mdtRes) {
  BEESIM_ASSERT(params_.queued, "attach() requires the queued metadata model");
  BEESIM_ASSERT(fluid_ == nullptr, "metadata service already attached");
  BEESIM_ASSERT(mdtRes.size() == mdtCount(), "one fluid resource per MDT");
  fluid_ = &fluid;
  mdtRes_ = std::move(mdtRes);
}

std::size_t MetaService::shardOf(std::string_view path) {
  return shards_.shardOf(path);
}

double MetaService::rateFor(MetaOpKind kind) const {
  switch (kind) {
    case MetaOpKind::kCreate:
      return params_.createRate;
    case MetaOpKind::kOpen:
      return params_.openRate;
    case MetaOpKind::kStat:
      return params_.statRate;
    case MetaOpKind::kUnlink:
      return params_.unlinkRate;
  }
  BEESIM_ASSERT(false, "unknown metadata op kind");
  return 0.0;  // unreachable
}

double MetaService::rampFactor(double queueDepth) const {
  const double d = std::max(queueDepth, 1.0);
  return d / (d + params_.saturationDepth - 1.0);
}

sim::ResourceIndex MetaService::mdtResource(std::size_t shard) const {
  BEESIM_ASSERT(shard < mdtRes_.size(), "unknown MDT (queued model attached?)");
  return mdtRes_[shard];
}

std::size_t MetaService::opAsync(MetaOpKind kind, std::string_view path,
                                 std::function<void(util::Seconds)> done) {
  BEESIM_ASSERT(fluid_ != nullptr, "queued metadata model not attached");
  const std::size_t shard = shardOf(path);
  ++ops_;
  ++mdtOps_[shard];
  // One op is a flow of kSaturationMiBps/rate MiB: a saturated MDT
  // (rampFactor -> 1, capacity kSaturationMiBps) then completes `rate` ops
  // per second, and a lone op takes saturationDepth/rate seconds.
  const double opMiB =
      kSaturationMiBps / rateFor(kind) *
      mdtRng_[shard].logNormalMedian(1.0, params_.jitterSigmaLog);
  sim::FlowSpec flow;
  flow.path = {mdtRes_[shard]};
  flow.bytes = static_cast<util::Bytes>(std::llround(opMiB * util::kMiB));
  flow.queueWeight = 1.0;
  if (done) {
    flow.onComplete = [done = std::move(done)](const sim::FlowStats& stats) {
      done(stats.endTime);
    };
  }
  fluid_->startFlow(std::move(flow));
  return shard;
}

}  // namespace beesim::beegfs
