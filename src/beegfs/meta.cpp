#include "beegfs/meta.hpp"

#include <cmath>

#include "util/error.hpp"

namespace beesim::beegfs {

MetaService::MetaService(const MetaParams& params, util::Rng rng)
    : params_(params), rng_(rng) {
  BEESIM_ASSERT(params.createLatency >= 0.0, "create latency must be >= 0");
  BEESIM_ASSERT(params.openLatency >= 0.0, "open latency must be >= 0");
  BEESIM_ASSERT(params.statLatency >= 0.0, "stat latency must be >= 0");
  BEESIM_ASSERT(params.jitterSigmaLog >= 0.0, "jitter sigma must be >= 0");
}

util::Seconds MetaService::jittered(util::Seconds base) {
  ++ops_;
  if (base <= 0.0) return 0.0;
  return base * rng_.logNormalMedian(1.0, params_.jitterSigmaLog);
}

util::Seconds MetaService::createCost() { return jittered(params_.createLatency); }

util::Seconds MetaService::openAllCost(std::size_t concurrentRanks) {
  BEESIM_ASSERT(concurrentRanks >= 1, "need at least one rank");
  // max of n i.i.d. latencies grows ~log(n); model that directly instead of
  // sampling n draws (the constant is folded into openLatency).
  const double pileUp = 1.0 + std::log(static_cast<double>(concurrentRanks));
  return jittered(params_.openLatency) * pileUp;
}

util::Seconds MetaService::statCost() { return jittered(params_.statLatency); }

}  // namespace beesim::beegfs
