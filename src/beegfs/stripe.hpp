// File striping: mapping byte ranges of a file onto storage targets.
//
// BeeGFS splits a file into fixed-size chunks distributed cyclically over
// the pattern's target list (Section II).  The math here answers the only
// question the fluid model needs: given a contiguous byte range, how many
// bytes land on each target?  Closed-form (no per-chunk loop), validated
// against a brute-force reference in the tests.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace beesim::beegfs {

class StripePattern {
 public:
  /// `targets`: flat target indices in pattern order; `chunkSize` > 0.
  StripePattern(std::vector<std::size_t> targets, util::Bytes chunkSize);

  std::size_t stripeCount() const { return targets_.size(); }
  util::Bytes chunkSize() const { return chunkSize_; }
  const std::vector<std::size_t>& targets() const { return targets_; }

  /// Target (flat index) storing chunk number `chunk`.
  std::size_t targetForChunk(std::uint64_t chunk) const;

  /// Target storing the byte at `offset`.
  std::size_t targetForOffset(util::Bytes offset) const;

  /// Bytes of [offset, offset+length) stored on each pattern slot
  /// (result[i] belongs to targets()[i]).  Sum equals length.
  std::vector<util::Bytes> bytesPerTarget(util::Bytes offset, util::Bytes length) const;

  std::string describe() const;

 private:
  std::vector<std::size_t> targets_;
  util::Bytes chunkSize_;
};

/// Number of integers j in [first, last] with j % modulus == residue.
/// (Exposed for tests; used by the closed-form striping math.)
std::uint64_t countCongruent(std::uint64_t first, std::uint64_t last, std::uint64_t modulus,
                             std::uint64_t residue);

}  // namespace beesim::beegfs
