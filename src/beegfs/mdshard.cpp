#include "beegfs/mdshard.hpp"

#include "util/error.hpp"

namespace beesim::beegfs {

const char* mdShardName(MdShardKind kind) {
  switch (kind) {
    case MdShardKind::kHashDir:
      return "hash";
    case MdShardKind::kRoundRobin:
      return "rr";
  }
  BEESIM_ASSERT(false, "unknown shard kind");
  return "?";  // unreachable
}

std::uint64_t mdPathHash(std::string_view text) {
  std::uint64_t h = 14695981039346656037ull;  // FNV offset basis
  for (const char c : text) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::string_view mdParentDir(std::string_view path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string_view::npos) return path;
  // Keep "/" as the parent of top-level entries rather than "".
  return path.substr(0, slash == 0 ? 1 : slash);
}

MdShardChooser::MdShardChooser(MdShardKind kind, std::size_t mdtCount)
    : kind_(kind), count_(mdtCount) {
  BEESIM_ASSERT(mdtCount >= 1, "need at least one MDT");
}

std::size_t MdShardChooser::shardOf(std::string_view path) {
  if (count_ == 1) return 0;
  switch (kind_) {
    case MdShardKind::kHashDir:
      return static_cast<std::size_t>(mdPathHash(mdParentDir(path)) % count_);
    case MdShardKind::kRoundRobin: {
      const std::size_t shard = next_;
      next_ = (next_ + 1) % count_;
      return shard;
    }
  }
  BEESIM_ASSERT(false, "unknown shard kind");
  return 0;  // unreachable
}

}  // namespace beesim::beegfs
