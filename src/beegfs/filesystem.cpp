#include "beegfs/filesystem.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace beesim::beegfs {

FileSystem::FileSystem(Deployment& deployment, util::Rng chooserRng)
    : deployment_(deployment),
      rng_(chooserRng),
      chooser_(makeChooser(deployment.params(), deployment.cluster())) {
  directories_["/"] = deployment.params().defaultStripe;
  // A freshly-mounted client observes the round-robin pointer wherever the
  // production system's create history left it (see params.hpp).
  if (auto* rr = dynamic_cast<RoundRobinChooser*>(chooser_.get())) {
    rr->randomizePhase(rng_, deployment.params().rrPointerPhaseStride);
  }
}

void FileSystem::mkdir(const std::string& path, const StripeSettings& settings) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "directory paths must be absolute");
  BEESIM_ASSERT(settings.stripeCount >= 1, "stripe count must be >= 1");
  BEESIM_ASSERT(settings.chunkSize > 0, "chunk size must be > 0");
  directories_[path] = settings;
}

StripeSettings FileSystem::settingsFor(const std::string& path) const {
  // Deepest directory whose path is a prefix (on '/' boundaries) wins.
  StripeSettings best = deployment_.params().defaultStripe;
  std::size_t bestLen = 0;
  for (const auto& [dir, settings] : directories_) {
    const bool isPrefix =
        dir == "/" ? true
                   : util::startsWith(path, dir) &&
                         (path.size() == dir.size() || path[dir.size()] == '/');
    if (isPrefix && dir.size() >= bestLen) {
      best = settings;
      bestLen = dir.size();
    }
  }
  return best;
}

FileHandle FileSystem::create(const std::string& path) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "file paths must be absolute");
  const auto settings = settingsFor(path);
  const auto& cluster = deployment_.cluster();

  const auto online = deployment_.mgmt().onlineTargets();
  if (online.empty()) throw util::ConfigError("no online storage targets");
  const std::size_t count =
      std::min<std::size_t>(settings.stripeCount, online.size());

  std::vector<std::size_t> targets = chooser_->choose(
      std::min<std::size_t>(count, cluster.targetCount()), cluster, rng_);

  // Replace any offline picks with random online targets not already used.
  // The replacements are sampled from rng_: a flat ascending fill would bias
  // every repaired stripe toward the low-numbered targets of server 0.
  const auto isOnline = [&](std::size_t t) { return deployment_.mgmt().target(t).online; };
  if (!std::all_of(targets.begin(), targets.end(), isOnline)) {
    std::vector<std::size_t> repaired;
    for (const auto t : targets) {
      if (isOnline(t)) repaired.push_back(t);
    }
    std::vector<std::size_t> candidates;
    for (const auto t : online) {
      if (std::find(repaired.begin(), repaired.end(), t) == repaired.end()) {
        candidates.push_back(t);
      }
    }
    while (repaired.size() < count && !candidates.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng_.uniformInt(0, static_cast<std::int64_t>(candidates.size()) - 1));
      repaired.push_back(candidates[pick]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    targets = std::move(repaired);
  }

  files_.push_back(FileInfo{path, StripePattern(std::move(targets), settings.chunkSize), 0});
  return FileHandle{files_.size() - 1};
}

FileHandle FileSystem::createPinned(const std::string& path, std::vector<std::size_t> targets,
                                    util::Bytes chunkSize) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "file paths must be absolute");
  for (const auto t : targets) {
    BEESIM_ASSERT(t < deployment_.cluster().targetCount(), "pinned target out of range");
  }
  files_.push_back(FileInfo{path, StripePattern(std::move(targets), chunkSize), 0});
  return FileHandle{files_.size() - 1};
}

const FileInfo& FileSystem::info(FileHandle handle) const {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  return files_[handle.value];
}

std::map<std::size_t, std::size_t> FileSystem::degradedSlots(FileHandle handle) const {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  std::map<std::size_t, std::size_t> slots;
  for (const auto& [key, target] : substitutes_) {
    if (key.first == handle.value) slots[key.second] = target;
  }
  return slots;
}

void FileSystem::transferAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                               util::Bytes length, double queueWeight, bool isWrite,
                               std::function<void(util::Seconds)> done) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  BEESIM_ASSERT(queueWeight > 0.0, "queue weight must be positive");
  auto& file = files_[handle.value];

  if (length == 0) {
    if (done) {
      auto& fluid = deployment_.fluid();
      fluid.engine().scheduleAfter(0.0, [done, &fluid] { done(fluid.now()); });
    }
    return;
  }

  const auto perTarget = file.pattern.bytesPerTarget(offset, length);
  if (isWrite) {
    file.size = std::max(file.size, offset + length);
  }

  // One chunk (fluid flow) per touched target; the operation completes when
  // every chunk resolved (possibly after retries/failovers).
  std::size_t flowsToStart = 0;
  for (const auto bytes : perTarget) {
    if (bytes > 0) ++flowsToStart;
  }
  BEESIM_ASSERT(flowsToStart > 0, "transfer touched no target");

  auto transfer = std::make_shared<TransferState>();
  transfer->node = node;
  transfer->handleValue = handle.value;
  transfer->isWrite = isWrite;
  transfer->queueWeight = queueWeight;
  transfer->pendingChunks = flowsToStart;
  transfer->done = std::move(done);
  for (std::size_t slot = 0; slot < perTarget.size(); ++slot) {
    if (perTarget[slot] == 0) continue;
    issueChunk(transfer, slot, perTarget[slot], /*failedAt=*/-1.0);
  }
}

void FileSystem::issueChunk(const std::shared_ptr<TransferState>& transfer,
                            std::size_t stripeSlot, util::Bytes bytes,
                            util::Seconds failedAt) {
  const auto& policy = deployment_.params().faults;
  auto& fluid = deployment_.fluid();

  if (faultStats_.aborted) {
    // The job already gave up; resolve the chunk without doing I/O.
    if (failedAt >= 0.0) faultStats_.degradedTime += fluid.now() - failedAt;
    finishChunk(transfer);
    return;
  }

  const auto& file = files_[transfer->handleValue];
  std::size_t target = file.pattern.targets()[stripeSlot];
  if (const auto sub = substitutes_.find({transfer->handleValue, stripeSlot});
      sub != substitutes_.end()) {
    target = sub->second;
  }

  if (policy.mode != ClientFaultPolicy::Mode::kNone &&
      !deployment_.mgmt().target(target).online) {
    // The registry already reports the target dead: don't wait for a
    // timeout.  Strict mode aborts; degraded mode reroutes immediately.
    if (policy.mode == ClientFaultPolicy::Mode::kStrict) {
      faultStats_.aborted = true;
      if (failedAt >= 0.0) faultStats_.degradedTime += fluid.now() - failedAt;
      finishChunk(transfer);
      return;
    }
    failOverChunk(transfer, stripeSlot, bytes, failedAt < 0.0 ? fluid.now() : failedAt,
                  /*rewrite=*/false);
    return;
  }

  // Rewrites charge usage again: the blocks written before the failure are
  // not reclaimed by the model (they leak until an offline cleanup).
  if (transfer->isWrite) deployment_.mgmt().recordUsage(target, bytes);
  const auto flow = fluid.startFlow(sim::FlowSpec{
      .path = deployment_.writePath(transfer->node, target),
      .bytes = bytes,
      .queueWeight = transfer->queueWeight,
      .rateCap = 0.0,
      .onComplete =
          [this, transfer, failedAt](const sim::FlowStats& stats) {
            if (failedAt >= 0.0) faultStats_.degradedTime += stats.endTime - failedAt;
            finishChunk(transfer);
          },
  });
  if (policy.mode != ClientFaultPolicy::Mode::kNone) {
    armWatchdog(transfer, stripeSlot, bytes, target, flow, failedAt);
  }
}

void FileSystem::armWatchdog(const std::shared_ptr<TransferState>& transfer,
                             std::size_t stripeSlot, util::Bytes bytes, std::size_t target,
                             sim::FlowId flow, util::Seconds failedAt) {
  auto& fluid = deployment_.fluid();
  fluid.engine().scheduleAfter(
      deployment_.params().faults.ioTimeout,
      [this, transfer, stripeSlot, bytes, target, flow, failedAt] {
        auto& fluid = deployment_.fluid();
        if (!fluid.flowActive(flow)) return;  // chunk finished meanwhile
        if (deployment_.mgmt().target(target).online) {
          // Still making (possibly slow) progress on a live target.
          armWatchdog(transfer, stripeSlot, bytes, target, flow, failedAt);
          return;
        }
        // The chunk sat unfinished for a full ioTimeout and its target is
        // registered offline: the client declares it failed.
        fluid.cancelFlow(flow);
        ++faultStats_.timeouts;
        const util::Seconds detectedAt = failedAt >= 0.0 ? failedAt : fluid.now();
        const auto& policy = deployment_.params().faults;
        if (policy.mode == ClientFaultPolicy::Mode::kStrict) {
          faultStats_.aborted = true;
          faultStats_.degradedTime += fluid.now() - detectedAt;
          finishChunk(transfer);
          return;
        }
        scheduleRetry(transfer, stripeSlot, bytes, target, /*attempt=*/0, detectedAt);
      });
}

void FileSystem::scheduleRetry(const std::shared_ptr<TransferState>& transfer,
                               std::size_t stripeSlot, util::Bytes bytes, std::size_t target,
                               int attempt, util::Seconds failedAt) {
  const auto& policy = deployment_.params().faults;
  const util::Seconds wait =
      policy.backoffBase * std::pow(policy.backoffFactor, static_cast<double>(attempt));
  deployment_.fluid().engine().scheduleAfter(
      wait, [this, transfer, stripeSlot, bytes, target, attempt, failedAt] {
        if (faultStats_.aborted) {
          faultStats_.degradedTime += deployment_.fluid().now() - failedAt;
          finishChunk(transfer);
          return;
        }
        if (deployment_.mgmt().target(target).online) {
          // The target came back: re-send the whole chunk to it (nothing
          // written during the failure window is trusted).
          ++faultStats_.retries;
          faultStats_.bytesRewritten += bytes;
          issueChunk(transfer, stripeSlot, bytes, failedAt);
          return;
        }
        if (attempt + 1 < deployment_.params().faults.maxRetries) {
          scheduleRetry(transfer, stripeSlot, bytes, target, attempt + 1, failedAt);
          return;
        }
        failOverChunk(transfer, stripeSlot, bytes, failedAt, /*rewrite=*/true);
      });
}

void FileSystem::failOverChunk(const std::shared_ptr<TransferState>& transfer,
                               std::size_t stripeSlot, util::Bytes bytes,
                               util::Seconds failedAt, bool rewrite) {
  const auto online = deployment_.mgmt().onlineTargets();
  if (online.empty()) {
    // Nowhere left to put the chunk: give up like strict mode.
    faultStats_.aborted = true;
    if (failedAt >= 0.0) faultStats_.degradedTime += deployment_.fluid().now() - failedAt;
    finishChunk(transfer);
    return;
  }
  const auto pick = online[static_cast<std::size_t>(
      rng_.uniformInt(0, static_cast<std::int64_t>(online.size()) - 1))];
  substitutes_[{transfer->handleValue, stripeSlot}] = pick;
  ++faultStats_.failovers;
  if (rewrite) faultStats_.bytesRewritten += bytes;
  issueChunk(transfer, stripeSlot, bytes, failedAt);
}

void FileSystem::finishChunk(const std::shared_ptr<TransferState>& transfer) {
  BEESIM_ASSERT(transfer->pendingChunks > 0, "transfer completion underflow");
  if (--transfer->pendingChunks == 0 && transfer->done) {
    transfer->done(deployment_.fluid().now());
  }
}

void FileSystem::writeAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                            util::Bytes length, double queueWeight,
                            std::function<void(util::Seconds)> done) {
  transferAsync(node, handle, offset, length, queueWeight, /*isWrite=*/true, std::move(done));
}

void FileSystem::readAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                           util::Bytes length, double queueWeight,
                           std::function<void(util::Seconds)> done) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  BEESIM_ASSERT(offset + length <= files_[handle.value].size,
                "read beyond the end of the file");
  transferAsync(node, handle, offset, length, queueWeight, /*isWrite=*/false,
                std::move(done));
}

void FileSystem::truncate(FileHandle handle, util::Bytes size) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  files_[handle.value].size = size;
}

}  // namespace beesim::beegfs
