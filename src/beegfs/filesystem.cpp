#include "beegfs/filesystem.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "qos/manager.hpp"
#include "util/error.hpp"
#include "util/string_util.hpp"

namespace beesim::beegfs {

FileSystem::FileSystem(Deployment& deployment, util::Rng chooserRng)
    : deployment_(deployment),
      rng_(chooserRng),
      chooser_(makeChooser(deployment.params(), deployment.cluster())) {
  directories_["/"] = deployment.params().defaultStripe;
  // A freshly-mounted client observes the round-robin pointer wherever the
  // production system's create history left it (see params.hpp).
  if (auto* rr = dynamic_cast<RoundRobinChooser*>(chooser_.get())) {
    rr->randomizePhase(rng_, deployment.params().rrPointerPhaseStride);
  }
  if (const std::size_t groups = deployment.mgmt().mirrorGroupCount(); groups > 0) {
    inflightMirror_.resize(groups);
    resync_.assign(groups, sim::FlowId{});
    // Mirror failover is mgmtd-driven: the registry flip *is* the
    // switchover signal, so mirrored chunks need no client watchdog.
    deployment.mgmt().addTargetStateListener([this](std::size_t target, bool online) {
      if (online) {
        onMirrorTargetOnline(target);
      } else {
        onMirrorTargetOffline(target);
      }
    });
  }
}

void FileSystem::mkdir(const std::string& path, const StripeSettings& settings) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "directory paths must be absolute");
  BEESIM_ASSERT(settings.stripeCount >= 1, "stripe count must be >= 1");
  BEESIM_ASSERT(settings.chunkSize > 0, "chunk size must be > 0");
  directories_[path] = settings;
}

StripeSettings FileSystem::settingsFor(const std::string& path) const {
  // Deepest directory whose path is a prefix (on '/' boundaries) wins.
  StripeSettings best = deployment_.params().defaultStripe;
  std::size_t bestLen = 0;
  for (const auto& [dir, settings] : directories_) {
    const bool isPrefix =
        dir == "/" ? true
                   : util::startsWith(path, dir) &&
                         (path.size() == dir.size() || path[dir.size()] == '/');
    if (isPrefix && dir.size() >= bestLen) {
      best = settings;
      bestLen = dir.size();
    }
  }
  return best;
}

FileHandle FileSystem::create(const std::string& path) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "file paths must be absolute");
  const auto settings = settingsFor(path);
  const auto& cluster = deployment_.cluster();

  if (settings.mirror) {
    const auto& mgmt = deployment_.mgmt();
    if (mgmt.mirrorGroupCount() == 0) {
      throw util::ConfigError("mirrored striping requires registered mirror groups");
    }
    // Stripe over buddy-mirror groups: map the chooser's picks onto distinct
    // usable groups (consistent copy reachable), then anchor each stripe
    // slot at the group's *current* primary.
    const auto usable = [&](std::size_t gid) {
      const auto& group = mgmt.mirrorGroup(gid);
      return group.state != MirrorState::kBad && mgmt.target(group.primary).online;
    };
    std::vector<std::size_t> usableGroups;
    for (std::size_t gid = 0; gid < mgmt.mirrorGroupCount(); ++gid) {
      if (usable(gid)) usableGroups.push_back(gid);
    }
    if (usableGroups.empty()) throw util::ConfigError("no usable mirror groups");
    const std::size_t count =
        std::min<std::size_t>(settings.stripeCount, usableGroups.size());
    // Each usable group's primary is online, so the online filter leaves at
    // least `count` eligible targets for the chooser.
    const auto picks = chooser_->choose(
        std::min<std::size_t>(count, cluster.targetCount()), cluster, rng_,
        [&](std::size_t t) { return mgmt.target(t).online; });
    std::vector<std::size_t> groups;
    for (const auto t : picks) {
      const auto gid = mgmt.mirrorGroupOf(t);
      if (gid && usable(*gid) &&
          std::find(groups.begin(), groups.end(), *gid) == groups.end()) {
        groups.push_back(*gid);
      }
    }
    // Fill up with random usable groups the picks did not cover (same
    // repair idiom as the offline-target path below).
    std::vector<std::size_t> candidates;
    for (const auto gid : usableGroups) {
      if (std::find(groups.begin(), groups.end(), gid) == groups.end()) {
        candidates.push_back(gid);
      }
    }
    while (groups.size() < count && !candidates.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng_.uniformInt(0, static_cast<std::int64_t>(candidates.size()) - 1));
      groups.push_back(candidates[pick]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    std::vector<std::size_t> targets;
    targets.reserve(groups.size());
    for (const auto gid : groups) targets.push_back(mgmt.mirrorGroup(gid).primary);
    files_.push_back(FileInfo{path, StripePattern(std::move(targets), settings.chunkSize),
                              0, /*mirrored=*/true});
    return FileHandle{files_.size() - 1};
  }

  const auto online = deployment_.mgmt().onlineTargets();
  if (online.empty()) throw util::ConfigError("no online storage targets");
  const std::size_t count =
      std::min<std::size_t>(settings.stripeCount, online.size());

  // The registry state is pushed into the chooser: a real mgmtd only hands
  // out online targets, so the heuristics themselves skip dead ones (the
  // count is already clamped to the online population above).
  const auto isOnline = [&](std::size_t t) { return deployment_.mgmt().target(t).online; };
  std::vector<std::size_t> targets = chooser_->choose(
      std::min<std::size_t>(count, cluster.targetCount()), cluster, rng_, isOnline);

  // Safety net (now expected to be a no-op): replace any offline picks with
  // random online targets not already used.  The replacements are sampled
  // from rng_: a flat ascending fill would bias every repaired stripe toward
  // the low-numbered targets of server 0.
  if (!std::all_of(targets.begin(), targets.end(), isOnline)) {
    std::vector<std::size_t> repaired;
    for (const auto t : targets) {
      if (isOnline(t)) repaired.push_back(t);
    }
    std::vector<std::size_t> candidates;
    for (const auto t : online) {
      if (std::find(repaired.begin(), repaired.end(), t) == repaired.end()) {
        candidates.push_back(t);
      }
    }
    while (repaired.size() < count && !candidates.empty()) {
      const auto pick = static_cast<std::size_t>(
          rng_.uniformInt(0, static_cast<std::int64_t>(candidates.size()) - 1));
      repaired.push_back(candidates[pick]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    }
    targets = std::move(repaired);
  }

  files_.push_back(FileInfo{path, StripePattern(std::move(targets), settings.chunkSize), 0});
  return FileHandle{files_.size() - 1};
}

FileHandle FileSystem::createPinned(const std::string& path, std::vector<std::size_t> targets,
                                    util::Bytes chunkSize) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "file paths must be absolute");
  for (const auto t : targets) {
    BEESIM_ASSERT(t < deployment_.cluster().targetCount(), "pinned target out of range");
  }
  const bool mirrored =
      settingsFor(path).mirror && deployment_.mgmt().mirrorGroupCount() > 0;
  files_.push_back(
      FileInfo{path, StripePattern(std::move(targets), chunkSize), 0, mirrored});
  return FileHandle{files_.size() - 1};
}

const FileInfo& FileSystem::info(FileHandle handle) const {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  return files_[handle.value];
}

void FileSystem::enableWeightedChooser() {
  if (dynamic_cast<WeightedChooser*>(chooser_.get()) != nullptr) return;
  chooser_ = std::make_unique<WeightedChooser>(std::move(chooser_), deployment_.mgmt());
}

std::size_t FileSystem::effectiveTarget(FileHandle handle, std::size_t slot) const {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  const auto& file = files_[handle.value];
  BEESIM_ASSERT(slot < file.pattern.targets().size(), "stripe slot out of range");
  if (const auto sub = substitutes_.find({handle.value, slot}); sub != substitutes_.end()) {
    return sub->second;
  }
  return file.pattern.targets()[slot];
}

util::Bytes FileSystem::slotBytes(FileHandle handle, std::size_t slot) const {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  const auto& file = files_[handle.value];
  BEESIM_ASSERT(slot < file.pattern.targets().size(), "stripe slot out of range");
  if (file.size == 0) return 0;
  return file.pattern.bytesPerTarget(0, file.size)[slot];
}

sim::FlowId FileSystem::migrateSlot(FileHandle handle, std::size_t slot,
                                    std::size_t newTarget, double queueWeight,
                                    double rateCap,
                                    std::function<void(const sim::FlowStats&)> done) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  const auto& file = files_[handle.value];
  BEESIM_ASSERT(slot < file.pattern.targets().size(), "stripe slot out of range");
  BEESIM_ASSERT(newTarget < deployment_.cluster().targetCount(),
                "migration target out of range");
  BEESIM_ASSERT(!file.mirrored, "mirrored slots move via their buddy groups");
  const std::size_t oldTarget = effectiveTarget(handle, slot);
  BEESIM_ASSERT(oldTarget != newTarget, "migration to the slot's current target");
  const util::Bytes bytes = slotBytes(handle, slot);
  BEESIM_ASSERT(bytes > 0, "an empty slot needs no migration");
  // The slot is re-homed immediately -- new chunks and re-issues address the
  // destination -- while the resident bytes stream over in the background.
  // Bytes on the old target leak until an offline cleanup, like rewrites.
  substitutes_[{handle.value, slot}] = newTarget;
  deployment_.mgmt().recordUsage(newTarget, bytes);
  return deployment_.fluid().startFlow(sim::FlowSpec{
      .path = deployment_.replicaPath(oldTarget, newTarget),
      .bytes = bytes,
      .queueWeight = queueWeight,
      .rateCap = rateCap,
      .onComplete = std::move(done),
  });
}

std::map<std::size_t, std::size_t> FileSystem::degradedSlots(FileHandle handle) const {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  std::map<std::size_t, std::size_t> slots;
  for (const auto& [key, target] : substitutes_) {
    if (key.first == handle.value) slots[key.second] = target;
  }
  return slots;
}

void FileSystem::transferAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                               util::Bytes length, double queueWeight, bool isWrite,
                               std::function<void(util::Seconds)> done) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  BEESIM_ASSERT(queueWeight > 0.0, "queue weight must be positive");
  auto& file = files_[handle.value];

  if (length == 0) {
    if (done) {
      auto& fluid = deployment_.fluid();
      fluid.engine().scheduleAfter(0.0, [done, &fluid] { done(fluid.now()); });
    }
    return;
  }

  const auto perTarget = file.pattern.bytesPerTarget(offset, length);
  if (isWrite) {
    file.size = std::max(file.size, offset + length);
  }

  // One chunk (fluid flow) per touched target; the operation completes when
  // every chunk resolved (possibly after retries/failovers).
  std::size_t flowsToStart = 0;
  for (const auto bytes : perTarget) {
    if (bytes > 0) ++flowsToStart;
  }
  BEESIM_ASSERT(flowsToStart > 0, "transfer touched no target");

  auto transfer = std::make_shared<TransferState>();
  transfer->node = node;
  transfer->handleValue = handle.value;
  transfer->isWrite = isWrite;
  transfer->queueWeight = queueWeight;
  transfer->pendingChunks = flowsToStart;
  transfer->done = std::move(done);
  for (std::size_t slot = 0; slot < perTarget.size(); ++slot) {
    if (perTarget[slot] == 0) continue;
    issueChunk(transfer, slot, perTarget[slot], /*failedAt=*/-1.0);
  }
}

void FileSystem::issueChunk(const std::shared_ptr<TransferState>& transfer,
                            std::size_t stripeSlot, util::Bytes bytes,
                            util::Seconds failedAt) {
  // QoS admission gates the write path only, and only first attempts: a
  // re-issue after a timeout/failover carries bytes whose tokens were spent
  // at the original admission, so the retry ladder can never double-spend.
  if (qos_ != nullptr && transfer->isWrite && failedAt < 0.0) {
    const bool admitted = qos_->admitChunk(
        transfer->node, bytes, [this, transfer, stripeSlot, bytes] {
          issueChunkAdmitted(transfer, stripeSlot, bytes, /*failedAt=*/-1.0);
        });
    if (!admitted) return;  // deferred; the manager resumes it
  }
  issueChunkAdmitted(transfer, stripeSlot, bytes, failedAt);
}

void FileSystem::issueChunkAdmitted(const std::shared_ptr<TransferState>& transfer,
                                    std::size_t stripeSlot, util::Bytes bytes,
                                    util::Seconds failedAt) {
  const auto& policy = deployment_.params().faults;
  auto& fluid = deployment_.fluid();

  if (faultStats_.aborted) {
    // The job already gave up; resolve the chunk without doing I/O.
    if (failedAt >= 0.0) faultStats_.degradedTime += fluid.now() - failedAt;
    finishChunk(transfer);
    return;
  }

  const auto& file = files_[transfer->handleValue];
  std::size_t target = file.pattern.targets()[stripeSlot];
  if (const auto sub = substitutes_.find({transfer->handleValue, stripeSlot});
      sub != substitutes_.end()) {
    target = sub->second;
  }

  if (file.mirrored) {
    if (const auto gid = deployment_.mgmt().mirrorGroupOf(target)) {
      issueMirroredChunk(transfer, stripeSlot, bytes, *gid, failedAt);
      return;
    }
    // A substitute outside any group (odd host counts): plain chunk below.
  }

  if (policy.mode != ClientFaultPolicy::Mode::kNone &&
      !deployment_.mgmt().target(target).online) {
    // The registry already reports the target dead: don't wait for a
    // timeout.  Strict mode aborts; degraded mode reroutes immediately.
    if (policy.mode == ClientFaultPolicy::Mode::kStrict) {
      faultStats_.aborted = true;
      if (failedAt >= 0.0) faultStats_.degradedTime += fluid.now() - failedAt;
      finishChunk(transfer);
      return;
    }
    failOverChunk(transfer, stripeSlot, bytes, failedAt < 0.0 ? fluid.now() : failedAt,
                  /*rewrite=*/false);
    return;
  }

  // Rewrites charge usage again: the blocks written before the failure are
  // not reclaimed by the model (they leak until an offline cleanup).
  if (transfer->isWrite) deployment_.mgmt().recordUsage(target, bytes);

  if (deployment_.params().hedge.enabled && transfer->isWrite) {
    // Track the chunk for hedging: the original leg resolves through the
    // track so a later hedge leg and it race cleanly (first wins).
    auto track = std::make_shared<HedgeTrack>();
    track->transfer = transfer;
    track->stripeSlot = stripeSlot;
    track->bytes = bytes;
    track->target = target;
    track->failedAt = failedAt;
    track->tried.push_back(target);
    track->primaryFlow = fluid.startFlow(sim::FlowSpec{
        .path = deployment_.writePath(transfer->node, target),
        .bytes = bytes,
        .queueWeight = transfer->queueWeight,
        .rateCap = 0.0,
        .onComplete =
            [this, track](const sim::FlowStats& s) {
              resolveHedged(track, /*hedgeWon=*/false, s.meanRate());
            },
    });
    hedged_[track->primaryFlow.value] = track;
    if (policy.mode != ClientFaultPolicy::Mode::kNone) {
      armWatchdog(transfer, stripeSlot, bytes, target, track->primaryFlow, failedAt);
    }
    armHedge(track);
    return;
  }

  const auto flow = fluid.startFlow(sim::FlowSpec{
      .path = deployment_.writePath(transfer->node, target),
      .bytes = bytes,
      .queueWeight = transfer->queueWeight,
      .rateCap = 0.0,
      .onComplete =
          [this, transfer, failedAt](const sim::FlowStats& stats) {
            if (failedAt >= 0.0) faultStats_.degradedTime += stats.endTime - failedAt;
            finishChunk(transfer);
          },
  });
  if (policy.mode != ClientFaultPolicy::Mode::kNone) {
    armWatchdog(transfer, stripeSlot, bytes, target, flow, failedAt);
  }
}

void FileSystem::armWatchdog(const std::shared_ptr<TransferState>& transfer,
                             std::size_t stripeSlot, util::Bytes bytes, std::size_t target,
                             sim::FlowId flow, util::Seconds failedAt) {
  auto& fluid = deployment_.fluid();
  fluid.engine().scheduleAfter(
      deployment_.params().faults.ioTimeout,
      [this, transfer, stripeSlot, bytes, target, flow, failedAt] {
        auto& fluid = deployment_.fluid();
        if (!fluid.flowActive(flow)) return;  // chunk finished meanwhile
        if (deployment_.mgmt().target(target).online) {
          // Still making (possibly slow) progress on a live target.
          armWatchdog(transfer, stripeSlot, bytes, target, flow, failedAt);
          return;
        }
        // The chunk sat unfinished for a full ioTimeout and its target is
        // registered offline: the client declares it failed.  The retry
        // ladder owns the chunk from here; any hedge leg is torn down.
        fluid.cancelFlow(flow);
        dropHedgeTrack(flow);
        ++faultStats_.timeouts;
        const util::Seconds detectedAt = failedAt >= 0.0 ? failedAt : fluid.now();
        const auto& policy = deployment_.params().faults;
        if (policy.mode == ClientFaultPolicy::Mode::kStrict) {
          faultStats_.aborted = true;
          faultStats_.degradedTime += fluid.now() - detectedAt;
          finishChunk(transfer);
          return;
        }
        scheduleRetry(transfer, stripeSlot, bytes, target, /*attempt=*/0, detectedAt);
      });
}

void FileSystem::scheduleRetry(const std::shared_ptr<TransferState>& transfer,
                               std::size_t stripeSlot, util::Bytes bytes, std::size_t target,
                               int attempt, util::Seconds failedAt) {
  const auto& policy = deployment_.params().faults;
  const util::Seconds wait =
      policy.backoffBase * std::pow(policy.backoffFactor, static_cast<double>(attempt));
  deployment_.fluid().engine().scheduleAfter(
      wait, [this, transfer, stripeSlot, bytes, target, attempt, failedAt] {
        if (faultStats_.aborted) {
          faultStats_.degradedTime += deployment_.fluid().now() - failedAt;
          finishChunk(transfer);
          return;
        }
        if (deployment_.mgmt().target(target).online) {
          // The target came back: re-send the whole chunk to it (nothing
          // written during the failure window is trusted).
          ++faultStats_.retries;
          faultStats_.bytesRewritten += bytes;
          issueChunk(transfer, stripeSlot, bytes, failedAt);
          return;
        }
        if (attempt + 1 < deployment_.params().faults.maxRetries) {
          scheduleRetry(transfer, stripeSlot, bytes, target, attempt + 1, failedAt);
          return;
        }
        failOverChunk(transfer, stripeSlot, bytes, failedAt, /*rewrite=*/true);
      });
}

void FileSystem::failOverChunk(const std::shared_ptr<TransferState>& transfer,
                               std::size_t stripeSlot, util::Bytes bytes,
                               util::Seconds failedAt, bool rewrite) {
  const auto online = deployment_.mgmt().onlineTargets();
  if (online.empty()) {
    // Nowhere left to put the chunk: give up like strict mode.
    faultStats_.aborted = true;
    if (failedAt >= 0.0) faultStats_.degradedTime += deployment_.fluid().now() - failedAt;
    finishChunk(transfer);
    return;
  }
  const auto pick = online[static_cast<std::size_t>(
      rng_.uniformInt(0, static_cast<std::int64_t>(online.size()) - 1))];
  substitutes_[{transfer->handleValue, stripeSlot}] = pick;
  ++faultStats_.failovers;
  if (rewrite) faultStats_.bytesRewritten += bytes;
  issueChunk(transfer, stripeSlot, bytes, failedAt);
}

void FileSystem::finishChunk(const std::shared_ptr<TransferState>& transfer) {
  BEESIM_ASSERT(transfer->pendingChunks > 0, "transfer completion underflow");
  if (--transfer->pendingChunks == 0 && transfer->done) {
    transfer->done(deployment_.fluid().now());
  }
}

// -- Hedged writes. ----------------------------------------------------------

void FileSystem::armHedge(const std::shared_ptr<HedgeTrack>& track) {
  deployment_.fluid().engine().scheduleAfter(
      deployment_.params().hedge.deadline, [this, track] { hedgeCheck(track); });
}

void FileSystem::hedgeCheck(const std::shared_ptr<HedgeTrack>& track) {
  if (track->resolved) return;
  auto& fluid = deployment_.fluid();
  const auto& policy = deployment_.params().hedge;

  const double primaryRate =
      fluid.flowActive(track->primaryFlow) ? fluid.flowRate(track->primaryFlow) : 0.0;
  const double hedgeRate =
      track->hedgeFlow.value != 0 && fluid.flowActive(track->hedgeFlow)
          ? fluid.flowRate(track->hedgeFlow)
          : 0.0;
  const double best = std::max(primaryRate, hedgeRate);

  // Peer-relative lag: compare against the median best-leg rate of the
  // other tracked in-flight chunks.  Like the HealthMonitor's score this is
  // relative on purpose -- a cluster-wide slowdown lags nobody.  A chunk
  // moving zero bytes is lagging with or without peers (dead-but-online).
  bool lagging = best <= 0.0;
  if (!lagging) {
    std::vector<double> peers;
    peers.reserve(hedged_.size());
    for (const auto& [id, other] : hedged_) {
      if (other == track || other->resolved) continue;
      const double op = fluid.flowActive(other->primaryFlow)
                            ? fluid.flowRate(other->primaryFlow)
                            : 0.0;
      const double oh =
          other->hedgeFlow.value != 0 && fluid.flowActive(other->hedgeFlow)
              ? fluid.flowRate(other->hedgeFlow)
              : 0.0;
      peers.push_back(std::max(op, oh));
    }
    if (!peers.empty()) {
      std::sort(peers.begin(), peers.end());
      const double median = peers[(peers.size() - 1) / 2];  // lower median
      lagging = median > 0.0 && best < policy.lagRatio * median;
    }
    // The in-flight peer set can be *uniformly* sick: once the healthy
    // chunks complete, only the ones behind a stuttering link remain and
    // their median cannot expose them.  The EWMA of completed winning legs'
    // rates keeps a memory of what healthy service looked like.
    if (!lagging && hedgeRefRate_ > 0.0) {
      lagging = best < policy.lagRatio * hedgeRefRate_;
    }
  }

  if (!lagging) {
    armHedge(track);
    return;
  }
  if (track->hedges >= policy.maxHedges) return;  // budget spent; stop the timer
  // A lagging live hedge leg is replaced like a dead one: it had a full
  // deadline to establish a rate, and `best` already folds it into the lag
  // verdict (a crawling same-host hedge must not pin the chunk to a host
  // whose link degraded after the leg was picked).  issueHedge cancels it.
  std::size_t alt = 0;
  if (!pickHedgeTarget(*track, alt)) {
    armHedge(track);  // nowhere to go yet; a repair may open a candidate
    return;
  }
  issueHedge(track, alt);
  armHedge(track);
}

bool FileSystem::pickHedgeTarget(const HedgeTrack& track, std::size_t& out) const {
  const auto& mgmt = deployment_.mgmt();
  const std::size_t primaryHost = mgmt.target(track.target).host;
  // Class 0: the original target's host (keeps the allocation's per-host
  // balance) unless that host is quarantined; class 1: any other
  // non-quarantined host; class 2: anything online (last resort -- better a
  // shunned target than a stalled job).  Within a class the least-used,
  // lowest-index target wins: deterministic, so campaigns stay
  // jobs-invariant (no rng_ draw on this path).
  int bestClass = 3;
  util::Bytes bestUsed = 0;
  bool found = false;
  for (std::size_t t = 0; t < deployment_.cluster().targetCount(); ++t) {
    const auto& entry = mgmt.target(t);
    if (!entry.online) continue;
    if (std::find(track.tried.begin(), track.tried.end(), t) != track.tried.end()) {
      continue;
    }
    const bool shunned =
        mgmt.hostHealth(entry.host) == HostHealth::kQuarantined;
    int cls = 2;
    if (!shunned) cls = entry.host == primaryHost ? 0 : 1;
    if (!found || cls < bestClass || (cls == bestClass && entry.used < bestUsed)) {
      found = true;
      bestClass = cls;
      bestUsed = entry.used;
      out = t;
    }
  }
  return found;
}

void FileSystem::issueHedge(const std::shared_ptr<HedgeTrack>& track, std::size_t alt) {
  auto& fluid = deployment_.fluid();
  // A dead previous hedge leg is abandoned before the replacement starts.
  if (track->hedgeFlow.value != 0 && fluid.flowActive(track->hedgeFlow)) {
    fluid.cancelFlow(track->hedgeFlow);
  }
  track->hedgeTarget = alt;
  track->tried.push_back(alt);
  ++track->hedges;
  ++hedgeStats_.hedgesIssued;
  hedgeStats_.bytesHedged += track->bytes;
  // The duplicate send charges usage like a rewrite (the loser's bytes leak
  // until an offline cleanup); it never passes QoS admission again -- the
  // chunk's tokens were spent when it was first admitted.
  deployment_.mgmt().recordUsage(alt, track->bytes);
  track->hedgeFlow = fluid.startFlow(sim::FlowSpec{
      .path = deployment_.writePath(track->transfer->node, alt),
      .bytes = track->bytes,
      .queueWeight = track->transfer->queueWeight,
      .rateCap = 0.0,
      .onComplete =
          [this, track](const sim::FlowStats& s) {
            resolveHedged(track, /*hedgeWon=*/true, s.meanRate());
          },
  });
}

void FileSystem::resolveHedged(const std::shared_ptr<HedgeTrack>& track, bool hedgeWon,
                               util::MiBps legRate) {
  if (track->resolved) return;
  track->resolved = true;
  auto& fluid = deployment_.fluid();
  hedged_.erase(track->primaryFlow.value);
  // Winning legs feed the lag reference (same alpha as the HealthMonitor's
  // EWMA).  Losing/cancelled legs never complete, so a stalled primary
  // cannot drag the reference down.
  if (legRate > 0.0) {
    hedgeRefRate_ = hedgeRefRate_ > 0.0 ? 0.3 * legRate + 0.7 * hedgeRefRate_ : legRate;
  }
  if (hedgeWon) {
    ++hedgeStats_.hedgeWins;
    if (fluid.flowActive(track->primaryFlow)) fluid.cancelFlow(track->primaryFlow);
    // Re-home the slot: later segments address the winner directly instead
    // of re-fighting the gray target chunk by chunk.
    substitutes_[{track->transfer->handleValue, track->stripeSlot}] = track->hedgeTarget;
  } else {
    if (track->hedges > 0) ++hedgeStats_.primaryWins;
    if (track->hedgeFlow.value != 0 && fluid.flowActive(track->hedgeFlow)) {
      fluid.cancelFlow(track->hedgeFlow);
    }
  }
  if (track->failedAt >= 0.0) {
    faultStats_.degradedTime += fluid.now() - track->failedAt;
  }
  finishChunk(track->transfer);
}

void FileSystem::dropHedgeTrack(sim::FlowId primaryFlow) {
  const auto it = hedged_.find(primaryFlow.value);
  if (it == hedged_.end()) return;
  const auto track = it->second;
  track->resolved = true;  // pending hedge timers become no-ops
  hedged_.erase(it);
  auto& fluid = deployment_.fluid();
  if (track->hedgeFlow.value != 0 && fluid.flowActive(track->hedgeFlow)) {
    fluid.cancelFlow(track->hedgeFlow);
  }
}

// -- Buddy mirroring. --------------------------------------------------------

bool FileSystem::resyncActive(std::size_t id) const {
  BEESIM_ASSERT(id < resync_.size(), "unknown mirror group");
  return resync_[id].value != 0;
}

void FileSystem::issueMirroredChunk(const std::shared_ptr<TransferState>& transfer,
                                    std::size_t stripeSlot, util::Bytes bytes,
                                    std::size_t group, util::Seconds failedAt) {
  auto& mgmt = deployment_.mgmt();
  auto& fluid = deployment_.fluid();
  const auto& policy = deployment_.params().faults;
  const auto& entry = mgmt.mirrorGroup(group);

  if (entry.state == MirrorState::kBad || !mgmt.target(entry.primary).online) {
    // No consistent copy reachable through this group: fall back to the
    // plain degraded-stripe ladder (the substitute may land in another
    // live group, which is fine -- it can't loop back into this one while
    // both members are down).
    if (policy.mode == ClientFaultPolicy::Mode::kStrict) {
      faultStats_.aborted = true;
      if (failedAt >= 0.0) faultStats_.degradedTime += fluid.now() - failedAt;
      finishChunk(transfer);
      return;
    }
    failOverChunk(transfer, stripeSlot, bytes, failedAt < 0.0 ? fluid.now() : failedAt,
                  /*rewrite=*/true);
    return;
  }

  // New writes replicate whenever the secondary is reachable -- also while
  // the group needs resync: the primary forwards fresh chunks and only the
  // stale delta (the tracked debt) waits for the background stream, so the
  // debt is bounded by what accrued while the secondary was unreachable.
  const bool replicate = transfer->isWrite && mgmt.target(entry.secondary).online;
  auto chunk = std::make_shared<MirrorChunk>();
  chunk->transfer = transfer;
  chunk->stripeSlot = stripeSlot;
  chunk->bytes = bytes;
  chunk->group = group;
  chunk->remainingFlows = replicate ? 2 : 1;
  chunk->failedAt = failedAt;
  if (transfer->isWrite) {
    mgmt.recordUsage(entry.primary, bytes);
    // A degraded group keeps accepting writes single-copy; the secondary is
    // owed the chunk on resync.
    if (!replicate) mgmt.addResyncDebt(group, bytes);
  }
  inflightMirror_[group].push_back(chunk);
  chunk->primaryFlow = fluid.startFlow(sim::FlowSpec{
      .path = deployment_.writePath(transfer->node, entry.primary),
      .bytes = bytes,
      .queueWeight = transfer->queueWeight,
      .rateCap = 0.0,
      .onComplete =
          [this, chunk](const sim::FlowStats&) { mirrorFlowDone(chunk, /*primarySide=*/true); },
  });
  if (replicate) {
    mgmt.recordUsage(entry.secondary, bytes);
    ++mirrorStats_.replicaFlows;
    mirrorStats_.bytesReplicated += bytes;
    chunk->replicaFlow = fluid.startFlow(sim::FlowSpec{
        .path = deployment_.replicaPath(entry.primary, entry.secondary),
        .bytes = bytes,
        .queueWeight = transfer->queueWeight,
        .rateCap = 0.0,
        .onComplete =
            [this, chunk](const sim::FlowStats&) { mirrorFlowDone(chunk, /*primarySide=*/false); },
    });
  }
}

void FileSystem::mirrorFlowDone(const std::shared_ptr<MirrorChunk>& chunk, bool primarySide) {
  if (primarySide) {
    chunk->primaryFlow = sim::FlowId{};
  } else {
    chunk->replicaFlow = sim::FlowId{};
  }
  BEESIM_ASSERT(chunk->remainingFlows > 0, "mirror chunk completion underflow");
  if (--chunk->remainingFlows > 0) return;  // the other copy is still landing
  resolveMirrorChunk(chunk);
}

void FileSystem::retireMirrorChunk(const std::shared_ptr<MirrorChunk>& chunk) {
  auto& inflight = inflightMirror_[chunk->group];
  inflight.erase(std::remove(inflight.begin(), inflight.end(), chunk), inflight.end());
}

void FileSystem::resolveMirrorChunk(const std::shared_ptr<MirrorChunk>& chunk) {
  retireMirrorChunk(chunk);
  if (chunk->failedAt >= 0.0) {
    faultStats_.degradedTime += deployment_.fluid().now() - chunk->failedAt;
  }
  finishChunk(chunk->transfer);
}

void FileSystem::onMirrorTargetOffline(std::size_t target) {
  auto& mgmt = deployment_.mgmt();
  const auto gid = mgmt.mirrorGroupOf(target);
  if (!gid) return;
  auto& fluid = deployment_.fluid();
  // Any in-progress resync crosses the dead member; its remaining delta
  // stays owed (debt is only settled on completion).
  cancelResync(*gid);

  const auto& entry = mgmt.mirrorGroup(*gid);
  if (target == mgmt.mirrorGroup(*gid).secondary) {
    // Replica leg gone: writes continue single-copy against the primary.
    // Partial replicas are untrusted, so each cancelled replica flow owes
    // the whole chunk to the resync.
    if (entry.state == MirrorState::kGood) {
      mgmt.setMirrorState(*gid, MirrorState::kNeedsResync);
    }
    const auto chunks = inflightMirror_[*gid];  // snapshot: handlers mutate it
    for (const auto& chunk : chunks) {
      if (chunk->replicaFlow.value != 0 && fluid.flowActive(chunk->replicaFlow)) {
        fluid.cancelFlow(chunk->replicaFlow);
        chunk->replicaFlow = sim::FlowId{};
        mgmt.addResyncDebt(*gid, chunk->bytes);
        BEESIM_ASSERT(chunk->remainingFlows > 0, "mirror chunk completion underflow");
        if (--chunk->remainingFlows == 0) resolveMirrorChunk(chunk);
      }
    }
    return;
  }
  if (target != entry.primary) return;

  if (entry.state == MirrorState::kGood && mgmt.target(entry.secondary).online) {
    switchMirrorPrimary(*gid);
    return;
  }

  // Primary died with no consistent secondary (offline or stale): acked
  // bytes whose only up-to-date copy sat on the dead primary are lost; that
  // is exactly the outstanding resync debt.
  mirrorStats_.bytesLost += entry.resyncDebt;
  mgmt.settleResyncDebt(*gid, entry.resyncDebt);
  mgmt.setMirrorState(*gid, MirrorState::kBad);
  // A stale-but-online survivor is still the best copy left: promote it so
  // the group keeps serving (needs-resync toward the dead member) instead
  // of leaking chunks to out-of-group substitutes.
  const bool survivorOnline = mgmt.target(entry.secondary).online;
  if (survivorOnline) mgmt.reviveMirrorGroup(*gid, entry.secondary);
  const auto& policy = deployment_.params().faults;
  const auto chunks = inflightMirror_[*gid];
  for (const auto& chunk : chunks) {
    if (chunk->primaryFlow.value != 0 && fluid.flowActive(chunk->primaryFlow)) {
      fluid.cancelFlow(chunk->primaryFlow);
    }
    if (chunk->replicaFlow.value != 0 && fluid.flowActive(chunk->replicaFlow)) {
      fluid.cancelFlow(chunk->replicaFlow);
    }
    retireMirrorChunk(chunk);
    const util::Seconds detectedAt = chunk->failedAt >= 0.0 ? chunk->failedAt : fluid.now();
    if (policy.mode == ClientFaultPolicy::Mode::kStrict) {
      faultStats_.aborted = true;
      faultStats_.degradedTime += fluid.now() - detectedAt;
      finishChunk(chunk->transfer);
      continue;
    }
    if (survivorOnline) {
      // Full rewrite: nothing the dead primary received is trusted.
      if (chunk->transfer->isWrite) faultStats_.bytesRewritten += chunk->bytes;
      issueMirroredChunk(chunk->transfer, chunk->stripeSlot, chunk->bytes, *gid,
                         detectedAt);
      continue;
    }
    failOverChunk(chunk->transfer, chunk->stripeSlot, chunk->bytes, detectedAt,
                  /*rewrite=*/true);
  }
}

void FileSystem::switchMirrorPrimary(std::size_t group) {
  auto& mgmt = deployment_.mgmt();
  auto& fluid = deployment_.fluid();
  // mgmtd switchover: the secondary holds every acked byte, so promotion
  // loses nothing and nothing is rewritten.  In-flight chunks keep their
  // replica-leg progress: only the untransferred remainder is re-sent to
  // the new primary.
  mgmt.failOverMirrorGroup(group);
  ++mirrorStats_.failovers;
  const std::size_t newPrimary = mgmt.mirrorGroup(group).primary;
  const auto chunks = inflightMirror_[group];  // snapshot: handlers mutate it
  for (const auto& chunk : chunks) {
    if (chunk->primaryFlow.value != 0 && fluid.flowActive(chunk->primaryFlow)) {
      fluid.cancelFlow(chunk->primaryFlow);
      chunk->primaryFlow = sim::FlowId{};
    }
    if (!chunk->transfer->isWrite) {
      // Reads simply re-fetch the whole chunk from the surviving copy.
      chunk->remainingFlows = 1;
      chunk->primaryFlow = fluid.startFlow(sim::FlowSpec{
          .path = deployment_.writePath(chunk->transfer->node, newPrimary),
          .bytes = chunk->bytes,
          .queueWeight = chunk->transfer->queueWeight,
          .rateCap = 0.0,
          .onComplete = [this, chunk](const sim::FlowStats&) { mirrorFlowDone(chunk, true); },
      });
      continue;
    }
    // The old primary's copy is stale whatever it received; the group
    // owes the whole chunk to it on resync.
    mgmt.addResyncDebt(group, chunk->bytes);
    util::Bytes resend = 0;
    if (chunk->replicaFlow.value != 0 && fluid.flowActive(chunk->replicaFlow)) {
      resend = fluid.cancelFlow(chunk->replicaFlow).value_or(0);
      chunk->replicaFlow = sim::FlowId{};
    }
    chunk->remainingFlows = 1;
    if (resend == 0) {
      // The replica already landed in full on the promoted target.
      resolveMirrorChunk(chunk);
      continue;
    }
    mirrorStats_.bytesResent += resend;
    chunk->primaryFlow = fluid.startFlow(sim::FlowSpec{
        .path = deployment_.writePath(chunk->transfer->node, newPrimary),
        .bytes = resend,
        .queueWeight = chunk->transfer->queueWeight,
        .rateCap = 0.0,
        .onComplete = [this, chunk](const sim::FlowStats&) { mirrorFlowDone(chunk, true); },
    });
  }
  // When the demoted member is still online (quarantine switchover, not a
  // crash) the owed delta can start streaming right away.
  maybeStartResync(group);
}

void FileSystem::hedgeMirrorGroupsOnHost(std::size_t host) {
  if (!deployment_.params().hedge.enabled) return;
  auto& mgmt = deployment_.mgmt();
  for (std::size_t gid = 0; gid < mgmt.mirrorGroupCount(); ++gid) {
    const auto& group = mgmt.mirrorGroup(gid);
    if (group.state != MirrorState::kGood) continue;
    if (mgmt.target(group.primary).host != host) continue;
    const auto& secondary = mgmt.target(group.secondary);
    if (!secondary.online) continue;
    if (mgmt.hostHealth(secondary.host) == HostHealth::kQuarantined) continue;
    switchMirrorPrimary(gid);
    ++hedgeStats_.mirrorSwitchovers;
  }
}

void FileSystem::onMirrorTargetOnline(std::size_t target) {
  auto& mgmt = deployment_.mgmt();
  const auto gid = mgmt.mirrorGroupOf(target);
  if (!gid) return;
  const auto& entry = mgmt.mirrorGroup(*gid);
  if (entry.state == MirrorState::kBad) {
    // First member back after a double failure: it becomes the
    // authoritative side and the group re-opens in needs-resync.
    mgmt.reviveMirrorGroup(*gid, target);
  }
  maybeStartResync(*gid);
}

void FileSystem::maybeStartResync(std::size_t group) {
  const auto& mgmt = deployment_.mgmt();
  const auto& entry = mgmt.mirrorGroup(group);
  if (entry.state != MirrorState::kNeedsResync) return;
  if (resyncActive(group)) return;
  if (!mgmt.target(entry.primary).online || !mgmt.target(entry.secondary).online) return;
  if (entry.resyncDebt == 0) {
    deployment_.mgmt().setMirrorState(group, MirrorState::kGood);
    return;
  }
  startResyncRound(group);
}

void FileSystem::startResyncRound(std::size_t group) {
  auto& mgmt = deployment_.mgmt();
  auto& fluid = deployment_.fluid();
  const auto& entry = mgmt.mirrorGroup(group);
  const util::Bytes delta = entry.resyncDebt;
  const auto& mirror = deployment_.params().mirror;
  mgmt.recordUsage(entry.secondary, delta);
  resync_[group] = fluid.startFlow(sim::FlowSpec{
      .path = deployment_.replicaPath(entry.primary, entry.secondary),
      .bytes = delta,
      .queueWeight = mirror.resyncQueueWeight,
      .rateCap = mirror.resyncRate,
      .onComplete =
          [this, group, delta](const sim::FlowStats& stats) {
            resync_[group] = sim::FlowId{};
            auto& mgmt = deployment_.mgmt();
            ++mirrorStats_.resyncJobs;
            mirrorStats_.bytesResynced += delta;
            mirrorStats_.resyncSeconds += stats.endTime - stats.startTime;
            mgmt.settleResyncDebt(group, delta);
            // Writes issued during the round re-opened debt: chain another
            // round until the delta drains, then the group is good again.
            maybeStartResync(group);
          },
  });
}

void FileSystem::cancelResync(std::size_t group) {
  if (resync_.empty() || resync_[group].value == 0) return;
  auto& fluid = deployment_.fluid();
  if (fluid.flowActive(resync_[group])) fluid.cancelFlow(resync_[group]);
  resync_[group] = sim::FlowId{};
}

void FileSystem::writeAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                            util::Bytes length, double queueWeight,
                            std::function<void(util::Seconds)> done) {
  transferAsync(node, handle, offset, length, queueWeight, /*isWrite=*/true, std::move(done));
}

void FileSystem::readAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                           util::Bytes length, double queueWeight,
                           std::function<void(util::Seconds)> done) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  BEESIM_ASSERT(offset + length <= files_[handle.value].size,
                "read beyond the end of the file");
  transferAsync(node, handle, offset, length, queueWeight, /*isWrite=*/false,
                std::move(done));
}

void FileSystem::truncate(FileHandle handle, util::Bytes size) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  files_[handle.value].size = size;
}

}  // namespace beesim::beegfs
