#include "beegfs/filesystem.hpp"

#include <algorithm>
#include <memory>

#include "util/error.hpp"
#include "util/string_util.hpp"

namespace beesim::beegfs {

FileSystem::FileSystem(Deployment& deployment, util::Rng chooserRng)
    : deployment_(deployment),
      rng_(chooserRng),
      chooser_(makeChooser(deployment.params(), deployment.cluster())) {
  directories_["/"] = deployment.params().defaultStripe;
  // A freshly-mounted client observes the round-robin pointer wherever the
  // production system's create history left it (see params.hpp).
  if (auto* rr = dynamic_cast<RoundRobinChooser*>(chooser_.get())) {
    rr->randomizePhase(rng_, deployment.params().rrPointerPhaseStride);
  }
}

void FileSystem::mkdir(const std::string& path, const StripeSettings& settings) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "directory paths must be absolute");
  BEESIM_ASSERT(settings.stripeCount >= 1, "stripe count must be >= 1");
  BEESIM_ASSERT(settings.chunkSize > 0, "chunk size must be > 0");
  directories_[path] = settings;
}

StripeSettings FileSystem::settingsFor(const std::string& path) const {
  // Deepest directory whose path is a prefix (on '/' boundaries) wins.
  StripeSettings best = deployment_.params().defaultStripe;
  std::size_t bestLen = 0;
  for (const auto& [dir, settings] : directories_) {
    const bool isPrefix =
        dir == "/" ? true
                   : util::startsWith(path, dir) &&
                         (path.size() == dir.size() || path[dir.size()] == '/');
    if (isPrefix && dir.size() >= bestLen) {
      best = settings;
      bestLen = dir.size();
    }
  }
  return best;
}

FileHandle FileSystem::create(const std::string& path) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "file paths must be absolute");
  const auto settings = settingsFor(path);
  const auto& cluster = deployment_.cluster();

  const auto online = deployment_.mgmt().onlineTargets();
  if (online.empty()) throw util::ConfigError("no online storage targets");
  const std::size_t count =
      std::min<std::size_t>(settings.stripeCount, online.size());

  std::vector<std::size_t> targets = chooser_->choose(
      std::min<std::size_t>(count, cluster.targetCount()), cluster, rng_);

  // Replace any offline picks with random online targets not already used.
  const auto isOnline = [&](std::size_t t) { return deployment_.mgmt().target(t).online; };
  if (!std::all_of(targets.begin(), targets.end(), isOnline)) {
    std::vector<std::size_t> repaired;
    for (const auto t : targets) {
      if (isOnline(t)) repaired.push_back(t);
    }
    for (const auto t : online) {
      if (repaired.size() >= count) break;
      if (std::find(repaired.begin(), repaired.end(), t) == repaired.end()) {
        repaired.push_back(t);
      }
    }
    targets = std::move(repaired);
  }

  files_.push_back(FileInfo{path, StripePattern(std::move(targets), settings.chunkSize), 0});
  return FileHandle{files_.size() - 1};
}

FileHandle FileSystem::createPinned(const std::string& path, std::vector<std::size_t> targets,
                                    util::Bytes chunkSize) {
  BEESIM_ASSERT(!path.empty() && path.front() == '/', "file paths must be absolute");
  for (const auto t : targets) {
    BEESIM_ASSERT(t < deployment_.cluster().targetCount(), "pinned target out of range");
  }
  files_.push_back(FileInfo{path, StripePattern(std::move(targets), chunkSize), 0});
  return FileHandle{files_.size() - 1};
}

const FileInfo& FileSystem::info(FileHandle handle) const {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  return files_[handle.value];
}

void FileSystem::transferAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                               util::Bytes length, double queueWeight, bool isWrite,
                               std::function<void(util::Seconds)> done) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  BEESIM_ASSERT(queueWeight > 0.0, "queue weight must be positive");
  auto& file = files_[handle.value];

  if (length == 0) {
    if (done) {
      auto& fluid = deployment_.fluid();
      fluid.engine().scheduleAfter(0.0, [done, &fluid] { done(fluid.now()); });
    }
    return;
  }

  const auto perTarget = file.pattern.bytesPerTarget(offset, length);
  if (isWrite) {
    file.size = std::max(file.size, offset + length);
  }

  // One fluid flow per touched target; the operation completes when all do.
  std::size_t flowsToStart = 0;
  for (const auto bytes : perTarget) {
    if (bytes > 0) ++flowsToStart;
  }
  BEESIM_ASSERT(flowsToStart > 0, "transfer touched no target");

  auto pendingFlows = std::make_shared<std::size_t>(flowsToStart);
  for (std::size_t slot = 0; slot < perTarget.size(); ++slot) {
    if (perTarget[slot] == 0) continue;
    const std::size_t target = file.pattern.targets()[slot];
    if (isWrite) deployment_.mgmt().recordUsage(target, perTarget[slot]);
    deployment_.fluid().startFlow(sim::FlowSpec{
        .path = deployment_.writePath(node, target),
        .bytes = perTarget[slot],
        .queueWeight = queueWeight,
        .rateCap = 0.0,
        .onComplete =
            [pendingFlows, done](const sim::FlowStats& stats) {
              BEESIM_ASSERT(*pendingFlows > 0, "transfer completion underflow");
              if (--*pendingFlows == 0 && done) done(stats.endTime);
            },
    });
  }
}

void FileSystem::writeAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                            util::Bytes length, double queueWeight,
                            std::function<void(util::Seconds)> done) {
  transferAsync(node, handle, offset, length, queueWeight, /*isWrite=*/true, std::move(done));
}

void FileSystem::readAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                           util::Bytes length, double queueWeight,
                           std::function<void(util::Seconds)> done) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  BEESIM_ASSERT(offset + length <= files_[handle.value].size,
                "read beyond the end of the file");
  transferAsync(node, handle, offset, length, queueWeight, /*isWrite=*/false,
                std::move(done));
}

void FileSystem::truncate(FileHandle handle, util::Bytes size) {
  BEESIM_ASSERT(handle.value < files_.size(), "unknown file handle");
  files_[handle.value].size = size;
}

}  // namespace beesim::beegfs
