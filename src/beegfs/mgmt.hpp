// Management service (beegfs-mgmtd): the registry every other component
// consults to find targets and services (Section II, Figure 1).
//
// In the simulation the registry is the authoritative mapping between flat
// target indices, their hosts, their BeeGFS-style numeric ids (101..),
// online state and consumed capacity.  Choosers consult it to skip offline
// targets; the filesystem updates per-target usage as files grow, enabling
// capacity-aware experiments and failure injection in tests.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "topology/cluster.hpp"
#include "util/units.hpp"

namespace beesim::beegfs {

/// State of one registered storage target.
struct TargetEntry {
  std::size_t flatIndex = 0;
  std::size_t host = 0;
  std::size_t indexInHost = 0;
  int beegfsNum = 0;      // e.g. 101, 202
  std::string name;
  bool online = true;
  util::Bytes capacity = 0;
  util::Bytes used = 0;
};

/// Gray-failure state of one storage host, driven by the HealthMonitor's
/// suspect -> quarantined -> probation machine (DESIGN.md §2.9).  Registered
/// here -- not inside the monitor -- because other components consult it:
/// the WeightedChooser drains creates away from quarantined hosts via the
/// host weights, and the hedging picker avoids them as hedge destinations.
enum class HostHealth {
  kHealthy,      ///< no evidence of trouble
  kSuspect,      ///< below the peer-relative ratio, patience running
  kQuarantined,  ///< drained: reduced create weight, shunned by hedges
  kProbation,    ///< partially re-admitted, watched for a relapse
};

const char* hostHealthName(HostHealth state);

/// Consistency state of a buddy-mirror group (beegfs-ctl --listmirrorgroups
/// reports the same three states per target).
enum class MirrorState {
  /// Both copies identical; writes are replicated synchronously.
  kGood,
  /// The secondary is stale (it was offline, or a failover just promoted it
  /// from the other role); the delta is tracked in `resyncDebt` and streamed
  /// back by a background resync once both members are online.
  kNeedsResync,
  /// No consistent copy is reachable (primary died while the secondary was
  /// offline or stale).  The group rejoins as needs-resync when a member
  /// returns.
  kBad,
};

const char* mirrorStateName(MirrorState state);

/// One storage buddy-mirror group: a primary/secondary target pair on
/// distinct hosts.  `primary`/`secondary` are flat target indices and swap
/// on failover; `resyncDebt` is the byte delta the secondary is missing.
struct MirrorGroup {
  std::size_t id = 0;
  std::size_t primary = 0;
  std::size_t secondary = 0;
  MirrorState state = MirrorState::kGood;
  util::Bytes resyncDebt = 0;
};

class ManagementService {
 public:
  /// Observer of target online-state flips; fired by setTargetOnline only on
  /// an actual change (the client uses this as the mgmtd switchover signal).
  using TargetStateListener = std::function<void(std::size_t flatIndex, bool online)>;

  /// Registers every target of the cluster.  `targetCapacity` is the usable
  /// capacity attributed to each OST (PlaFRIM: 131 TB / 8).
  ManagementService(const topo::ClusterConfig& cluster, util::Bytes targetCapacity);

  std::size_t targetCount() const { return targets_.size(); }
  const TargetEntry& target(std::size_t flatIndex) const;

  /// All currently-online flat target indices.
  std::vector<std::size_t> onlineTargets() const;

  /// Mark a target offline/online (failure injection).
  void setTargetOnline(std::size_t flatIndex, bool online);

  /// Account `bytes` written to a target.  Throws ConfigError if the target
  /// would exceed its capacity (capacity 0 disables accounting).
  void recordUsage(std::size_t flatIndex, util::Bytes bytes);

  /// Number of storage hosts in the registry.
  std::size_t hostCount() const { return hostTargetCount_.size(); }

  /// Targets per host (registry view).
  std::size_t targetsOnHost(std::size_t host) const;

  // -- Per-host chooser weights (rebalance retarget lever). ----------------

  /// Create-bias weight of one storage host, consulted by WeightedChooser:
  /// new file stripes are distributed across hosts proportionally to these.
  /// All 1.0 by default (uniform = chooser behaves exactly as unwrapped).
  /// Throws ContractError on negative or non-finite weights.
  void setHostWeight(std::size_t host, double weight);
  double hostWeight(std::size_t host) const;
  const std::vector<double>& hostWeights() const { return hostWeights_; }

  /// Back to uniform weights (controller disengaging).
  void resetHostWeights();

  // -- Per-host gray-failure state (HealthMonitor; DESIGN.md §2.9). --------

  /// Health state of one storage host.  All kHealthy by default; only the
  /// HealthMonitor writes these.
  void setHostHealth(std::size_t host, HostHealth state);
  HostHealth hostHealth(std::size_t host) const;

  /// True when any host is currently quarantined (cheap gate for the
  /// hedging picker's health-aware path).
  bool anyHostQuarantined() const;

  /// Register a buddy-mirror group.  Throws ConfigError unless both targets
  /// exist, sit on distinct hosts and belong to no other group.  Returns the
  /// group id.
  std::size_t registerMirrorGroup(std::size_t primary, std::size_t secondary);

  std::size_t mirrorGroupCount() const { return groups_.size(); }
  const MirrorGroup& mirrorGroup(std::size_t id) const;

  /// Group containing `flatIndex`, if any (O(1)).
  std::optional<std::size_t> mirrorGroupOf(std::size_t flatIndex) const;

  /// Swap primary and secondary after a primary failure.  The promoted
  /// target must hold a consistent copy: this throws ContractError unless
  /// the group is in state good and the secondary is online.  The group
  /// leaves in state needs-resync (the old primary is stale now).
  void failOverMirrorGroup(std::size_t id);

  /// Bring a bad group back into service with `primary` (which must be
  /// online and a member) as its authoritative side; state becomes
  /// needs-resync with the debt untouched.
  void reviveMirrorGroup(std::size_t id, std::size_t primary);

  void setMirrorState(std::size_t id, MirrorState state);

  /// Grow / settle the byte delta the secondary is missing.
  void addResyncDebt(std::size_t id, util::Bytes bytes);
  void settleResyncDebt(std::size_t id, util::Bytes bytes);

  void addTargetStateListener(TargetStateListener listener);

 private:
  MirrorGroup& mutableGroup(std::size_t id);

  std::vector<TargetEntry> targets_;
  std::vector<std::size_t> hostTargetCount_;
  std::vector<double> hostWeights_;
  std::vector<HostHealth> hostHealth_;
  std::vector<MirrorGroup> groups_;
  /// flat target index -> group id (or npos); sized lazily on registration.
  std::vector<std::size_t> groupOfTarget_;
  std::vector<TargetStateListener> listeners_;
};

/// Default buddy pairing for a cluster: target t of host h pairs with target
/// t of host h+1 (hosts taken two by two), orientation alternating per group
/// so primaries spread evenly across both hosts of a pair.  Empty when fewer
/// than two hosts exist.
std::vector<std::pair<std::size_t, std::size_t>> defaultMirrorPairs(
    const topo::ClusterConfig& cluster);

}  // namespace beesim::beegfs
