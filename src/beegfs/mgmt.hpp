// Management service (beegfs-mgmtd): the registry every other component
// consults to find targets and services (Section II, Figure 1).
//
// In the simulation the registry is the authoritative mapping between flat
// target indices, their hosts, their BeeGFS-style numeric ids (101..),
// online state and consumed capacity.  Choosers consult it to skip offline
// targets; the filesystem updates per-target usage as files grow, enabling
// capacity-aware experiments and failure injection in tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "topology/cluster.hpp"
#include "util/units.hpp"

namespace beesim::beegfs {

/// State of one registered storage target.
struct TargetEntry {
  std::size_t flatIndex = 0;
  std::size_t host = 0;
  std::size_t indexInHost = 0;
  int beegfsNum = 0;      // e.g. 101, 202
  std::string name;
  bool online = true;
  util::Bytes capacity = 0;
  util::Bytes used = 0;
};

class ManagementService {
 public:
  /// Registers every target of the cluster.  `targetCapacity` is the usable
  /// capacity attributed to each OST (PlaFRIM: 131 TB / 8).
  ManagementService(const topo::ClusterConfig& cluster, util::Bytes targetCapacity);

  std::size_t targetCount() const { return targets_.size(); }
  const TargetEntry& target(std::size_t flatIndex) const;

  /// All currently-online flat target indices.
  std::vector<std::size_t> onlineTargets() const;

  /// Mark a target offline/online (failure injection).
  void setTargetOnline(std::size_t flatIndex, bool online);

  /// Account `bytes` written to a target.  Throws ConfigError if the target
  /// would exceed its capacity (capacity 0 disables accounting).
  void recordUsage(std::size_t flatIndex, util::Bytes bytes);

  /// Number of storage hosts in the registry.
  std::size_t hostCount() const { return hostTargetCount_.size(); }

  /// Targets per host (registry view).
  std::size_t targetsOnHost(std::size_t host) const;

 private:
  std::vector<TargetEntry> targets_;
  std::vector<std::size_t> hostTargetCount_;
};

}  // namespace beesim::beegfs
