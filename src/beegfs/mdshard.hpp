// Directory -> MDT shard placement (DESIGN.md §2.10).
//
// BeeGFS distributes the namespace across metadata targets per directory:
// all entries of one directory live on one MDT, and directories spread by a
// hash of their path.  The chooser is pluggable (MdShardKind) so experiments
// can compare the BeeGFS-like hash policy against a round-robin upper bound
// on spread.
#pragma once

#include <cstdint>
#include <string_view>

#include "beegfs/params.hpp"

namespace beesim::beegfs {

/// FNV-1a over the bytes of `text` (stable across platforms; the shard map
/// must not depend on std::hash implementation details).
std::uint64_t mdPathHash(std::string_view text);

/// Parent directory of `path` ("/beegfs/dir/file" -> "/beegfs/dir"); a path
/// with no '/' is its own parent (root-level entry).
std::string_view mdParentDir(std::string_view path);

/// Maps operation paths to MDT indices in [0, mdtCount).  kHashDir is
/// stateless; kRoundRobin keeps a cursor (deterministic in call order).
class MdShardChooser {
 public:
  MdShardChooser(MdShardKind kind, std::size_t mdtCount);

  std::size_t shardOf(std::string_view path);

  MdShardKind kind() const { return kind_; }
  std::size_t count() const { return count_; }

 private:
  MdShardKind kind_;
  std::size_t count_;
  std::size_t next_ = 0;
};

}  // namespace beesim::beegfs
