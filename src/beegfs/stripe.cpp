#include "beegfs/stripe.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace beesim::beegfs {

StripePattern::StripePattern(std::vector<std::size_t> targets, util::Bytes chunkSize)
    : targets_(std::move(targets)), chunkSize_(chunkSize) {
  BEESIM_ASSERT(!targets_.empty(), "stripe pattern needs at least one target");
  BEESIM_ASSERT(chunkSize_ > 0, "chunk size must be positive");
  // Targets must be distinct: BeeGFS never stripes a file twice over the
  // same target.
  auto sorted = targets_;
  std::sort(sorted.begin(), sorted.end());
  BEESIM_ASSERT(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end(),
                "stripe pattern targets must be distinct");
}

std::size_t StripePattern::targetForChunk(std::uint64_t chunk) const {
  return targets_[chunk % targets_.size()];
}

std::size_t StripePattern::targetForOffset(util::Bytes offset) const {
  return targetForChunk(offset / chunkSize_);
}

std::uint64_t countCongruent(std::uint64_t first, std::uint64_t last, std::uint64_t modulus,
                             std::uint64_t residue) {
  BEESIM_ASSERT(modulus > 0, "modulus must be positive");
  BEESIM_ASSERT(residue < modulus, "residue must be < modulus");
  if (first > last) return 0;
  // Count of j <= x with j % m == r is floor((x - r) / m) + 1 when x >= r.
  auto upTo = [&](std::uint64_t x) -> std::uint64_t {
    if (x < residue) return 0;
    return (x - residue) / modulus + 1;
  };
  const std::uint64_t below = first == 0 ? 0 : upTo(first - 1);
  return upTo(last) - below;
}

std::vector<util::Bytes> StripePattern::bytesPerTarget(util::Bytes offset,
                                                       util::Bytes length) const {
  const std::size_t k = targets_.size();
  std::vector<util::Bytes> perTarget(k, 0);
  if (length == 0) return perTarget;

  const util::Bytes end = offset + length;
  const std::uint64_t firstChunk = offset / chunkSize_;
  const std::uint64_t lastChunk = (end - 1) / chunkSize_;

  if (firstChunk == lastChunk) {
    perTarget[firstChunk % k] = length;
    return perTarget;
  }

  // Partial head chunk.
  const util::Bytes headBytes = (firstChunk + 1) * chunkSize_ - offset;
  perTarget[firstChunk % k] += headBytes;
  // Partial (or full) tail chunk.
  const util::Bytes tailBytes = end - lastChunk * chunkSize_;
  perTarget[lastChunk % k] += tailBytes;

  // Full chunks strictly between head and tail, distributed by residue.
  if (lastChunk > firstChunk + 1) {
    const std::uint64_t a = firstChunk + 1;
    const std::uint64_t b = lastChunk - 1;
    for (std::size_t i = 0; i < k; ++i) {
      // Residues cycle over chunk numbers; slot i holds chunks == i (mod k)
      // only when the pattern starts at chunk 0 -- which it does: BeeGFS maps
      // chunk number c to pattern slot c % k.
      perTarget[i] += countCongruent(a, b, k, i) * chunkSize_;
    }
  }
  return perTarget;
}

std::string StripePattern::describe() const {
  std::string out = "stripe[count=" + std::to_string(targets_.size()) +
                    ", chunk=" + util::formatBytes(chunkSize_) + ", targets=";
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(targets_[i]);
  }
  out += ']';
  return out;
}

}  // namespace beesim::beegfs
