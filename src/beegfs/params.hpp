// Software-side configuration of the simulated BeeGFS deployment.
//
// Hardware lives in topo::ClusterConfig; everything here corresponds to
// things a BeeGFS administrator (or the client mount) controls: striping
// defaults, the target-choice heuristic, client worker threads, metadata
// costs.  PlaFRIM's production values (stripe count 4, chunk 512 KiB,
// round-robin choice) are the defaults, per Section III-A of the paper.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/units.hpp"

namespace beesim::beegfs {

/// Target-choice heuristics (Section II: "By default, the OSTs used to store
/// each file are randomly chosen.  However, other heuristics can be used.").
enum class ChooserKind {
  /// Deterministic round-robin over the deployment's target order.  On
  /// PlaFRIM the vendor configured this; the empirically-observed order
  /// makes a stripe-count-4 file always land as a (1,3) allocation.
  kRoundRobin,
  /// BeeGFS' default: uniformly random distinct targets.
  kRandom,
  /// Round-robin over a host-interleaved order (ablation: this order would
  /// have made count-4 files balanced (2,2) on PlaFRIM).
  kRoundRobinInterleaved,
  /// Lesson #4's recommendation: pick the same number of targets on every
  /// storage host (random within a host).
  kBalanced,
};

const char* chooserName(ChooserKind kind);

/// Per-directory striping configuration (BeeGFS sets striping per folder).
struct StripeSettings {
  /// Number of targets to stripe across (clamped to the deployment size).
  unsigned stripeCount = 4;
  /// Chunk ("stripe") size.
  util::Bytes chunkSize = 512 * util::kKiB;
  /// Stripe over buddy-mirror groups instead of raw targets (beegfs-ctl
  /// --setpattern --buddymirror).  Requires MirrorPolicy::enabled so groups
  /// exist; each stripe slot then addresses a group's current primary.
  bool mirror = false;
};

/// Storage buddy-mirroring configuration (beegfs-mgmtd side).  Mirror groups
/// pair a primary and a secondary target on distinct hosts; mirrored writes
/// are forwarded primary -> secondary and acked only when both copies landed.
struct MirrorPolicy {
  bool enabled = false;
  /// Explicit (primary, secondary) flat-target pairs.  Empty means the
  /// deployment derives a default pairing across host boundaries
  /// (defaultMirrorPairs in mgmt.hpp).
  std::vector<std::pair<std::size_t, std::size_t>> groups;
  /// Rate cap for background resync flows (<= 0: uncapped).
  util::MiBps resyncRate = 0.0;
  /// Queue weight of resync flows relative to foreground chunk flows
  /// (weight 1.0); < 1 makes resync yield bandwidth to applications.
  double resyncQueueWeight = 0.25;
};

/// Cumulative mirroring/resync accounting (one FileSystem's view).
struct MirrorStats {
  /// Secondary replica flows issued (one per mirrored write chunk while the
  /// group is consistent).
  std::size_t replicaFlows = 0;
  util::Bytes bytesReplicated = 0;
  /// Primary -> secondary switchovers performed by the registry.
  std::size_t failovers = 0;
  /// Bytes of in-flight chunks re-sent to the new primary after a failover
  /// (only the untransferred remainder of the replica leg; never a rewrite).
  util::Bytes bytesResent = 0;
  /// Acked bytes whose only surviving copy died (group went bad).
  util::Bytes bytesLost = 0;
  /// Completed background resync rounds and the delta they streamed.
  std::size_t resyncJobs = 0;
  util::Bytes bytesResynced = 0;
  util::Seconds resyncSeconds = 0.0;
};

/// Client kernel-module model.
struct ClientParams {
  /// Worker threads servicing RPCs per mounted node; bounds a node's
  /// outstanding chunk requests.  This is why the storage-side queue depth
  /// scales with the number of *nodes* rather than processes (Lessons #1/#3).
  int workerThreads = 8;
  /// Outstanding requests a single process can keep in flight (write-behind).
  int inflightPerProcess = 8;
  /// Throughput penalty when more processes than workers share a node
  /// (intra-node contention, Fig. 5b): effective inflight is divided by
  /// (1 + penalty * (ppn - workers) / workers) for ppn > workers.
  /// Calibrated to the paper's "slight degradation" at 16 ppn.
  double oversubscriptionPenalty = 0.08;
  /// Connection/writeback ramp-up: a node starts at `rampInitialFraction` of
  /// its ceiling and approaches 1 with time constant `rampTau`.  This is the
  /// latency effect that penalizes small total data sizes (Fig. 2).
  double rampInitialFraction = 0.35;
  util::Seconds rampTau = 0.8;
  /// Per-job log-normal jitter on the ramp time constant (connection
  /// establishment and slow-start vary run to run); the dominant noise
  /// source for small transfers (Fig. 2's left side).
  double rampJitterSigmaLog = 0.4;
};

/// How directories map onto metadata targets when several MDTs exist
/// (DESIGN.md §2.10).  BeeGFS shards the namespace per directory; the
/// chooser is pluggable so experiments can compare policies.
enum class MdShardKind {
  /// Hash of the parent directory (BeeGFS-like): files in one directory
  /// share an MDT, distinct directories spread across MDTs.
  kHashDir,
  /// Round-robin over MDTs per operation path (upper bound on spread;
  /// ignores directory affinity).
  kRoundRobin,
};

const char* mdShardName(MdShardKind kind);

/// Metadata service cost model (MDS backed by an SSD MDT).
///
/// Two models share this struct.  The legacy *scalar* model charges a
/// jittered latency per operation (createLatency/openLatency/...).  The
/// *queued* model (DESIGN.md §2.10, off by default) instead runs every
/// operation as a flow through a per-MDT fluid resource with a concurrency
/// ramp, so metadata ops contend observably in virtual time; the *Rate
/// fields are per-MDT saturation throughputs in ops/s.
struct MetaParams {
  /// File create (rank 0) latency.
  util::Seconds createLatency = 0.004;
  /// Per-rank open latency (paid once per rank before I/O starts; ranks open
  /// concurrently, so the job pays ~one openLatency, with jitter).
  util::Seconds openLatency = 0.0015;
  util::Seconds statLatency = 0.0008;
  /// Unlink latency (mdtest-style cleanup phases).
  util::Seconds unlinkLatency = 0.002;
  /// Log-normal jitter applied to each operation (log-space sigma).
  double jitterSigmaLog = 0.25;

  /// Master switch for the queued MDS/MDT model.  Off keeps runs bitwise
  /// identical to the scalar model (no MDT resources, no extra rng use).
  bool queued = false;
  /// Number of metadata targets the namespace shards across (>= 1).
  unsigned mdtCount = 1;
  /// Per-MDT saturation throughput per operation kind, in ops/s.  An SSD
  /// MDT needs a deep queue to reach these (see saturationDepth); the
  /// defaults keep the single-op create latency near the scalar model's
  /// createLatency.
  double createRate = 2500.0;
  double openRate = 10000.0;
  double statRate = 20000.0;
  double unlinkRate = 4000.0;
  /// Concurrency ramp: an MDT at queue depth d serves at
  /// d / (d + saturationDepth - 1) of its saturation throughput, so a
  /// single isolated op takes saturationDepth/rate seconds and a deep
  /// queue approaches the full rate.
  double saturationDepth = 16.0;
  /// Directory -> MDT placement policy.
  MdShardKind shard = MdShardKind::kHashDir;
};

/// Client behaviour when a storage target fails while chunks are in flight
/// (mid-run fault injection; see src/faults/).  The client detects a dead
/// target by timeout -- a chunk that has not completed after `ioTimeout`
/// whose target the registry reports offline is considered failed.
struct ClientFaultPolicy {
  enum class Mode {
    /// Legacy behaviour: no watchdogs, no detection.  A chunk stalled on a
    /// failed target stalls forever (the run deadlocks if nothing revives
    /// the target).  This is the default so healthy runs are bit-identical
    /// to pre-fault-model builds.
    kNone,
    /// First failed chunk aborts the whole job: in-flight chunks to dead
    /// targets are cancelled and ranks stop at their next segment boundary.
    kStrict,
    /// Degraded-stripe mode: a failed chunk is retried on its own target
    /// with exponential backoff (the target may come back); after
    /// `maxRetries` unsuccessful waits it fails over to a surviving target
    /// and the chunk is rewritten there in full.
    kDegraded,
  };
  Mode mode = Mode::kNone;
  /// Client I/O timeout: how long a chunk may sit unfinished before the
  /// client checks its target's registry state.
  util::Seconds ioTimeout = 5.0;
  /// First retry backoff; doubles (backoffFactor) per attempt.
  util::Seconds backoffBase = 1.0;
  double backoffFactor = 2.0;
  /// Same-target retry attempts before failing over.
  int maxRetries = 3;
};

/// Hedged-write mitigation for fail-slow (gray) targets (see DESIGN.md §2.9).
/// Crash faults are caught by the watchdog ladder above; a target serving at
/// 5% of its rate never trips it.  With hedging enabled, every in-flight
/// write chunk is re-checked each `deadline`: a chunk whose best leg moves
/// slower than `lagRatio` x the median of its in-flight peers (or not at
/// all) is *hedged* -- re-issued in full to a deterministic alternate target
/// -- and the first leg to land wins; the loser is cancelled.  The winner
/// re-homes the stripe slot, so later segments go to it directly.  Hedge
/// legs never pass QoS admission again: the chunk's tokens were spent at the
/// original admission (charge-once, exactly like the retry ladder).
struct HedgePolicy {
  bool enabled = false;
  /// Re-check cadence; also the minimum age before a chunk can be hedged.
  util::Seconds deadline = 1.0;
  /// Hedge when the chunk's best leg runs below this fraction of the median
  /// rate of its in-flight peers.  A fully stalled chunk (rate 0) is hedged
  /// regardless, peers or not.
  double lagRatio = 0.25;
  /// Cap on hedge legs issued per chunk (bounds duplicate bytes and timers
  /// when nearly everything is degraded).
  int maxHedges = 8;
};

/// Cumulative hedging accounting (one FileSystem's view).
struct HedgeStats {
  /// Hedge legs issued (duplicate chunk sends).
  std::size_t hedgesIssued = 0;
  /// Chunks resolved by a hedge leg (slot re-homed to the winner).
  std::size_t hedgeWins = 0;
  /// Hedged chunks whose original leg still landed first.
  std::size_t primaryWins = 0;
  /// Buddy-mirror primary switchovers triggered by quarantine (the mirrored
  /// files' equivalent of a hedge: redirect to the healthy replica).
  std::size_t mirrorSwitchovers = 0;
  /// Bytes of duplicate hedge sends (leak on the losing target, like
  /// rewrites, until an offline cleanup).
  util::Bytes bytesHedged = 0;
};

/// Cumulative client-side failure accounting (one FileSystem's view).
struct ClientFaultStats {
  /// Chunk failures detected by watchdog timeout (target offline).
  std::size_t timeouts = 0;
  /// Chunks re-issued to their own target after it came back.
  std::size_t retries = 0;
  /// Chunks moved to a substitute target (degraded stripe).
  std::size_t failovers = 0;
  /// Bytes re-sent because of retries and failovers.
  util::Bytes bytesRewritten = 0;
  /// Summed per-chunk time between failure detection and the chunk's final
  /// resolution (success or abort).
  util::Seconds degradedTime = 0.0;
  /// Strict-mode abort (or degraded mode with no surviving target).
  bool aborted = false;
};

struct BeegfsParams {
  StripeSettings defaultStripe;           // PlaFRIM: count 4, 512 KiB
  ChooserKind chooser = ChooserKind::kRoundRobin;
  ClientParams client;
  MetaParams meta;
  /// Virtual-time window over which one device-noise factor applies.
  util::Seconds noiseEpoch = 3.0;
  /// Fluid re-solve cadence (refreshes time-dependent capacities: client
  /// ramp-up, noise epochs).
  util::Seconds resolveInterval = 0.25;
  /// Probability that a file create does *not* advance the round-robin
  /// pointer before a concurrent create reads it (create race).  Calibrated
  /// to the paper's Fig. 13 observation that two concurrent count-4 creates
  /// shared all four targets in ~1/3 of repetitions.
  double rrCreateRaceProbability = 1.0 / 3.0;
  /// The round-robin pointer's phase when an application arrives is set by
  /// all the creates other users performed before; each mount observes an
  /// arbitrary phase that is (mostly) a multiple of the common create
  /// granularity.  Stride 2 reproduces the allocation sets the paper
  /// observed for every stripe count (count 4 always (1,3), count 2 split
  /// between (1,1)/(0,2), count 6 between (3,3)/(2,4), ...).
  std::size_t rrPointerPhaseStride = 2;
  /// Client failure semantics for mid-run target faults (default: none, the
  /// exact legacy behaviour).
  ClientFaultPolicy faults;
  /// Storage buddy mirroring (default: disabled, no groups registered).
  MirrorPolicy mirror;
  /// Hedged writes against fail-slow targets (default: disabled; healthy
  /// runs stay bit-identical -- no tracks, no timers).
  HedgePolicy hedge;
};

/// Per-run environment state (production-system mood): multiplicative
/// factors applied to network links and storage devices, sampled by the
/// harness per repetition.  Defaults are noise-free.
struct EnvironmentFactors {
  double network = 1.0;
  double storage = 1.0;
};

}  // namespace beesim::beegfs
