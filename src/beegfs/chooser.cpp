#include "beegfs/chooser.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "beegfs/mgmt.hpp"
#include "util/error.hpp"

namespace beesim::beegfs {

const char* chooserName(ChooserKind kind) {
  switch (kind) {
    case ChooserKind::kRoundRobin: return "round-robin";
    case ChooserKind::kRandom: return "random";
    case ChooserKind::kRoundRobinInterleaved: return "round-robin-interleaved";
    case ChooserKind::kBalanced: return "balanced";
  }
  return "unknown";
}

namespace {

void checkCount(std::size_t count, const topo::ClusterConfig& cluster,
                const TargetFilter& eligible) {
  BEESIM_ASSERT(count >= 1, "stripe count must be >= 1");
  BEESIM_ASSERT(count <= cluster.targetCount(),
                "stripe count exceeds the number of targets in the deployment");
  if (!eligible) return;
  std::size_t healthy = 0;
  for (std::size_t t = 0; t < cluster.targetCount(); ++t) {
    if (eligible(t)) ++healthy;
  }
  BEESIM_ASSERT(healthy >= count,
                "stripe count exceeds the number of eligible (online) targets");
}

/// Eligible flat targets of each host, in flat-index order.  With no filter
/// this is exactly [flatTargetIndex(h, 0..n)], so downstream rng draws match
/// the unfiltered implementations bit for bit.
std::vector<std::vector<std::size_t>> eligiblePerHost(
    const topo::ClusterConfig& cluster, const TargetFilter& eligible) {
  std::vector<std::vector<std::size_t>> perHost(cluster.hosts.size());
  for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
    perHost[h].reserve(cluster.hosts[h].targets.size());
    for (std::size_t t = 0; t < cluster.hosts[h].targets.size(); ++t) {
      const std::size_t flat = cluster.flatTargetIndex(h, t);
      if (!eligible || eligible(flat)) perHost[h].push_back(flat);
    }
  }
  return perHost;
}

}  // namespace

RoundRobinChooser::RoundRobinChooser(std::vector<std::size_t> order, double raceProbability,
                                     ChooserKind kind)
    : order_(std::move(order)), raceProbability_(raceProbability), kind_(kind) {
  BEESIM_ASSERT(!order_.empty(), "round-robin order must not be empty");
  BEESIM_ASSERT(raceProbability_ >= 0.0 && raceProbability_ <= 1.0,
                "race probability must be in [0, 1]");
}

void RoundRobinChooser::setPointer(std::size_t p) { pointer_ = p % order_.size(); }

void RoundRobinChooser::randomizePhase(util::Rng& rng, std::size_t stride) {
  BEESIM_ASSERT(stride >= 1, "phase stride must be >= 1");
  const std::size_t phases = (order_.size() + stride - 1) / stride;
  pointer_ = (stride * static_cast<std::size_t>(
                           rng.uniformInt(0, static_cast<std::int64_t>(phases) - 1))) %
             order_.size();
}

std::vector<std::size_t> RoundRobinChooser::choose(std::size_t count,
                                                   const topo::ClusterConfig& cluster,
                                                   util::Rng& rng,
                                                   const TargetFilter& eligible) {
  checkCount(count, cluster, eligible);
  BEESIM_ASSERT(order_.size() == cluster.targetCount(),
                "round-robin order does not match the cluster's target count");
  // Walk the cyclic order from the pointer, skipping ineligible targets (a
  // real mgmtd hands out the next *online* targets).  With every target
  // eligible, walked == count and this is the classic sliding window.
  std::vector<std::size_t> picks;
  picks.reserve(count);
  std::size_t walked = 0;
  while (picks.size() < count) {
    BEESIM_ASSERT(walked < order_.size(), "round-robin walked a full lap short");
    const std::size_t candidate = order_[(pointer_ + walked) % order_.size()];
    ++walked;
    if (!eligible || eligible(candidate)) picks.push_back(candidate);
  }
  // The create race: with probability raceProbability_ the pointer is not
  // advanced, so the next create sees the same window.
  if (!rng.bernoulli(raceProbability_)) {
    pointer_ = (pointer_ + walked) % order_.size();
  }
  return picks;
}

std::vector<std::size_t> RandomChooser::choose(std::size_t count,
                                               const topo::ClusterConfig& cluster,
                                               util::Rng& rng,
                                               const TargetFilter& eligible) {
  checkCount(count, cluster, eligible);
  if (!eligible) return rng.sampleWithoutReplacement(cluster.targetCount(), count);
  std::vector<std::size_t> healthy;
  healthy.reserve(cluster.targetCount());
  for (std::size_t t = 0; t < cluster.targetCount(); ++t) {
    if (eligible(t)) healthy.push_back(t);
  }
  // All healthy: same population size and an identity index map, so the rng
  // stream and the picks match the unfiltered branch exactly.
  auto indices = rng.sampleWithoutReplacement(healthy.size(), count);
  for (auto& i : indices) i = healthy[i];
  return indices;
}

std::vector<std::size_t> BalancedChooser::choose(std::size_t count,
                                                 const topo::ClusterConfig& cluster,
                                                 util::Rng& rng,
                                                 const TargetFilter& eligibleFilter) {
  checkCount(count, cluster, eligibleFilter);
  const std::size_t hosts = cluster.hosts.size();
  const auto hostTargets = eligiblePerHost(cluster, eligibleFilter);

  // Distribute `count` across hosts as evenly as their capacities allow:
  // start with floor(count / hosts) everywhere, then hand out the remainder
  // to randomly-chosen hosts (respecting per-host eligible-target counts).
  std::vector<std::size_t> perHost(hosts, 0);
  std::size_t remaining = count;
  // Repeatedly add one target to every host that still has room, a "level"
  // at a time, so uneven per-host capacities are handled correctly.
  while (remaining > 0) {
    std::vector<std::size_t> eligible;
    for (std::size_t h = 0; h < hosts; ++h) {
      if (perHost[h] < hostTargets[h].size()) eligible.push_back(h);
    }
    BEESIM_ASSERT(!eligible.empty(), "balanced chooser ran out of targets");
    if (remaining >= eligible.size()) {
      for (const auto h : eligible) ++perHost[h];
      remaining -= eligible.size();
    } else {
      // Remainder level: random subset of eligible hosts gets one extra.
      auto lucky = rng.sampleWithoutReplacement(eligible.size(), remaining);
      for (const auto i : lucky) ++perHost[eligible[i]];
      remaining = 0;
    }
  }

  std::vector<std::size_t> picks;
  picks.reserve(count);
  for (std::size_t h = 0; h < hosts; ++h) {
    auto local = rng.sampleWithoutReplacement(hostTargets[h].size(), perHost[h]);
    for (const auto t : local) picks.push_back(hostTargets[h][t]);
  }
  // Shuffle so chunk 0 does not always live on host 0.
  rng.shuffle(picks);
  return picks;
}

WeightedChooser::WeightedChooser(std::unique_ptr<TargetChooser> inner,
                                 const ManagementService& mgmt)
    : inner_(std::move(inner)), mgmt_(mgmt) {
  BEESIM_ASSERT(inner_ != nullptr, "weighted chooser needs an inner chooser");
}

std::vector<std::size_t> WeightedChooser::choose(std::size_t count,
                                                 const topo::ClusterConfig& cluster,
                                                 util::Rng& rng,
                                                 const TargetFilter& eligible) {
  const auto& weights = mgmt_.hostWeights();
  BEESIM_ASSERT(weights.size() == cluster.hosts.size(),
                "mgmtd host weights do not match the cluster");
  // Uniform weights (the default, and the controller's disengaged state):
  // behave exactly like the inner chooser, rng stream included.
  const bool uniform = std::all_of(weights.begin(), weights.end(),
                                   [&](double w) { return w == weights.front(); });
  if (uniform) return inner_->choose(count, cluster, rng, eligible);

  checkCount(count, cluster, eligible);
  const std::size_t hosts = cluster.hosts.size();
  const auto hostTargets = eligiblePerHost(cluster, eligible);

  // Quota per host by largest remainder on the published weights: hosts with
  // no eligible targets contribute weight 0, quotas are capped by per-host
  // capacity, and leftovers go to the largest fractional deficit (ties to
  // the lowest host index).  Deterministic -- no rng until the within-host
  // draws -- so identical metric histories yield identical placements.
  std::vector<double> w(hosts, 0.0);
  double sumW = 0.0;
  for (std::size_t h = 0; h < hosts; ++h) {
    if (!hostTargets[h].empty()) w[h] = weights[h];
    sumW += w[h];
  }
  if (sumW <= 0.0) {
    // Every weighted host is ineligible (or all weights zero): the bias has
    // nothing to say, fall back to the inner policy.
    return inner_->choose(count, cluster, rng, eligible);
  }

  std::vector<double> ideal(hosts, 0.0);
  std::vector<std::size_t> quota(hosts, 0);
  std::size_t assigned = 0;
  for (std::size_t h = 0; h < hosts; ++h) {
    ideal[h] = static_cast<double>(count) * w[h] / sumW;
    quota[h] = std::min(static_cast<std::size_t>(ideal[h]), hostTargets[h].size());
    assigned += quota[h];
  }
  while (assigned < count) {
    std::size_t best = hosts;
    // Start below any real deficit: once a zero-weight host absorbs a spill
    // pick its deficit is a genuine -1, -2, ... and must still win over
    // "no candidate yet".
    double bestDeficit = -std::numeric_limits<double>::infinity();
    for (std::size_t h = 0; h < hosts; ++h) {
      if (quota[h] >= hostTargets[h].size()) continue;
      const double deficit = ideal[h] - static_cast<double>(quota[h]);
      if (deficit > bestDeficit) {
        bestDeficit = deficit;
        best = h;
      }
    }
    BEESIM_ASSERT(best < hosts, "weighted chooser ran out of eligible targets");
    ++quota[best];
    ++assigned;
  }

  std::vector<std::size_t> picks;
  picks.reserve(count);
  for (std::size_t h = 0; h < hosts; ++h) {
    auto local = rng.sampleWithoutReplacement(hostTargets[h].size(), quota[h]);
    for (const auto t : local) picks.push_back(hostTargets[h][t]);
  }
  rng.shuffle(picks);
  return picks;
}

std::vector<std::size_t> plafrimRoundRobinOrder(const topo::ClusterConfig& cluster) {
  // Reconstructed from the paper: count-4 creates always produce the
  // placements (101,201,202,203) or (204,102,103,104).  Both are windows of
  // the cyclic order [101, 201, 202, 203, 204, 102, 103, 104]:
  // first target of host 0, all targets of the remaining hosts, then the
  // remaining targets of host 0.
  BEESIM_ASSERT(!cluster.hosts.empty(), "cluster has no hosts");
  std::vector<std::size_t> order;
  order.reserve(cluster.targetCount());
  order.push_back(cluster.flatTargetIndex(0, 0));
  for (std::size_t h = 1; h < cluster.hosts.size(); ++h) {
    for (std::size_t t = 0; t < cluster.hosts[h].targets.size(); ++t) {
      order.push_back(cluster.flatTargetIndex(h, t));
    }
  }
  for (std::size_t t = 1; t < cluster.hosts[0].targets.size(); ++t) {
    order.push_back(cluster.flatTargetIndex(0, t));
  }
  return order;
}

std::vector<std::size_t> interleavedOrder(const topo::ClusterConfig& cluster) {
  std::vector<std::size_t> order;
  order.reserve(cluster.targetCount());
  std::size_t level = 0;
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
      if (level < cluster.hosts[h].targets.size()) {
        order.push_back(cluster.flatTargetIndex(h, level));
        any = true;
      }
    }
    ++level;
  }
  return order;
}

std::unique_ptr<TargetChooser> makeChooser(const BeegfsParams& params,
                                           const topo::ClusterConfig& cluster) {
  switch (params.chooser) {
    case ChooserKind::kRoundRobin:
      return std::make_unique<RoundRobinChooser>(plafrimRoundRobinOrder(cluster),
                                                 params.rrCreateRaceProbability,
                                                 ChooserKind::kRoundRobin);
    case ChooserKind::kRoundRobinInterleaved:
      return std::make_unique<RoundRobinChooser>(interleavedOrder(cluster),
                                                 params.rrCreateRaceProbability,
                                                 ChooserKind::kRoundRobinInterleaved);
    case ChooserKind::kRandom:
      return std::make_unique<RandomChooser>();
    case ChooserKind::kBalanced:
      return std::make_unique<BalancedChooser>();
  }
  BEESIM_ASSERT(false, "unknown chooser kind");
  return nullptr;  // unreachable
}

}  // namespace beesim::beegfs
