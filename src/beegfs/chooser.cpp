#include "beegfs/chooser.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace beesim::beegfs {

const char* chooserName(ChooserKind kind) {
  switch (kind) {
    case ChooserKind::kRoundRobin: return "round-robin";
    case ChooserKind::kRandom: return "random";
    case ChooserKind::kRoundRobinInterleaved: return "round-robin-interleaved";
    case ChooserKind::kBalanced: return "balanced";
  }
  return "unknown";
}

namespace {

void checkCount(std::size_t count, const topo::ClusterConfig& cluster) {
  BEESIM_ASSERT(count >= 1, "stripe count must be >= 1");
  BEESIM_ASSERT(count <= cluster.targetCount(),
                "stripe count exceeds the number of targets in the deployment");
}

}  // namespace

RoundRobinChooser::RoundRobinChooser(std::vector<std::size_t> order, double raceProbability,
                                     ChooserKind kind)
    : order_(std::move(order)), raceProbability_(raceProbability), kind_(kind) {
  BEESIM_ASSERT(!order_.empty(), "round-robin order must not be empty");
  BEESIM_ASSERT(raceProbability_ >= 0.0 && raceProbability_ <= 1.0,
                "race probability must be in [0, 1]");
}

void RoundRobinChooser::setPointer(std::size_t p) { pointer_ = p % order_.size(); }

void RoundRobinChooser::randomizePhase(util::Rng& rng, std::size_t stride) {
  BEESIM_ASSERT(stride >= 1, "phase stride must be >= 1");
  const std::size_t phases = (order_.size() + stride - 1) / stride;
  pointer_ = (stride * static_cast<std::size_t>(
                           rng.uniformInt(0, static_cast<std::int64_t>(phases) - 1))) %
             order_.size();
}

std::vector<std::size_t> RoundRobinChooser::choose(std::size_t count,
                                                   const topo::ClusterConfig& cluster,
                                                   util::Rng& rng) {
  checkCount(count, cluster);
  BEESIM_ASSERT(order_.size() == cluster.targetCount(),
                "round-robin order does not match the cluster's target count");
  std::vector<std::size_t> picks;
  picks.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    picks.push_back(order_[(pointer_ + i) % order_.size()]);
  }
  // The create race: with probability raceProbability_ the pointer is not
  // advanced, so the next create sees the same window.
  if (!rng.bernoulli(raceProbability_)) {
    pointer_ = (pointer_ + count) % order_.size();
  }
  return picks;
}

std::vector<std::size_t> RandomChooser::choose(std::size_t count,
                                               const topo::ClusterConfig& cluster,
                                               util::Rng& rng) {
  checkCount(count, cluster);
  return rng.sampleWithoutReplacement(cluster.targetCount(), count);
}

std::vector<std::size_t> BalancedChooser::choose(std::size_t count,
                                                 const topo::ClusterConfig& cluster,
                                                 util::Rng& rng) {
  checkCount(count, cluster);
  const std::size_t hosts = cluster.hosts.size();

  // Distribute `count` across hosts as evenly as their capacities allow:
  // start with floor(count / hosts) everywhere, then hand out the remainder
  // to randomly-chosen hosts (respecting per-host target counts).
  std::vector<std::size_t> perHost(hosts, 0);
  std::size_t remaining = count;
  // Repeatedly add one target to every host that still has room, a "level"
  // at a time, so uneven per-host capacities are handled correctly.
  while (remaining > 0) {
    std::vector<std::size_t> eligible;
    for (std::size_t h = 0; h < hosts; ++h) {
      if (perHost[h] < cluster.hosts[h].targets.size()) eligible.push_back(h);
    }
    BEESIM_ASSERT(!eligible.empty(), "balanced chooser ran out of targets");
    if (remaining >= eligible.size()) {
      for (const auto h : eligible) ++perHost[h];
      remaining -= eligible.size();
    } else {
      // Remainder level: random subset of eligible hosts gets one extra.
      auto lucky = rng.sampleWithoutReplacement(eligible.size(), remaining);
      for (const auto i : lucky) ++perHost[eligible[i]];
      remaining = 0;
    }
  }

  std::vector<std::size_t> picks;
  picks.reserve(count);
  for (std::size_t h = 0; h < hosts; ++h) {
    auto local = rng.sampleWithoutReplacement(cluster.hosts[h].targets.size(), perHost[h]);
    for (const auto t : local) picks.push_back(cluster.flatTargetIndex(h, t));
  }
  // Shuffle so chunk 0 does not always live on host 0.
  rng.shuffle(picks);
  return picks;
}

std::vector<std::size_t> plafrimRoundRobinOrder(const topo::ClusterConfig& cluster) {
  // Reconstructed from the paper: count-4 creates always produce the
  // placements (101,201,202,203) or (204,102,103,104).  Both are windows of
  // the cyclic order [101, 201, 202, 203, 204, 102, 103, 104]:
  // first target of host 0, all targets of the remaining hosts, then the
  // remaining targets of host 0.
  BEESIM_ASSERT(!cluster.hosts.empty(), "cluster has no hosts");
  std::vector<std::size_t> order;
  order.reserve(cluster.targetCount());
  order.push_back(cluster.flatTargetIndex(0, 0));
  for (std::size_t h = 1; h < cluster.hosts.size(); ++h) {
    for (std::size_t t = 0; t < cluster.hosts[h].targets.size(); ++t) {
      order.push_back(cluster.flatTargetIndex(h, t));
    }
  }
  for (std::size_t t = 1; t < cluster.hosts[0].targets.size(); ++t) {
    order.push_back(cluster.flatTargetIndex(0, t));
  }
  return order;
}

std::vector<std::size_t> interleavedOrder(const topo::ClusterConfig& cluster) {
  std::vector<std::size_t> order;
  order.reserve(cluster.targetCount());
  std::size_t level = 0;
  bool any = true;
  while (any) {
    any = false;
    for (std::size_t h = 0; h < cluster.hosts.size(); ++h) {
      if (level < cluster.hosts[h].targets.size()) {
        order.push_back(cluster.flatTargetIndex(h, level));
        any = true;
      }
    }
    ++level;
  }
  return order;
}

std::unique_ptr<TargetChooser> makeChooser(const BeegfsParams& params,
                                           const topo::ClusterConfig& cluster) {
  switch (params.chooser) {
    case ChooserKind::kRoundRobin:
      return std::make_unique<RoundRobinChooser>(plafrimRoundRobinOrder(cluster),
                                                 params.rrCreateRaceProbability,
                                                 ChooserKind::kRoundRobin);
    case ChooserKind::kRoundRobinInterleaved:
      return std::make_unique<RoundRobinChooser>(interleavedOrder(cluster),
                                                 params.rrCreateRaceProbability,
                                                 ChooserKind::kRoundRobinInterleaved);
    case ChooserKind::kRandom:
      return std::make_unique<RandomChooser>();
    case ChooserKind::kBalanced:
      return std::make_unique<BalancedChooser>();
  }
  BEESIM_ASSERT(false, "unknown chooser kind");
  return nullptr;  // unreachable
}

}  // namespace beesim::beegfs
