// FileSystem facade: the client-visible API of the simulated BeeGFS.
//
// Mirrors what an application (or IOR) sees: directories carry striping
// settings (stripe count + chunk size, set per folder by the administrator,
// Section II); creating a file picks its targets with the configured
// heuristic; writes are asynchronous fluid flows.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "beegfs/chooser.hpp"
#include "beegfs/deployment.hpp"
#include "beegfs/stripe.hpp"

namespace beesim::qos {
class QosManager;
}

namespace beesim::beegfs {

struct FileHandle {
  std::size_t value = 0;
  friend bool operator==(FileHandle a, FileHandle b) { return a.value == b.value; }
};

struct FileInfo {
  std::string path;
  StripePattern pattern;
  util::Bytes size = 0;
  /// Mirrored file: every pattern target is a mirror-group anchor and chunks
  /// are routed to the group's *current* primary (so failover redirects new
  /// chunks without touching the pattern).
  bool mirrored = false;
};

class FileSystem {
 public:
  /// `chooserRng` drives the target-choice heuristic.
  FileSystem(Deployment& deployment, util::Rng chooserRng);

  Deployment& deployment() { return deployment_; }

  /// Create/replace a directory with explicit striping settings.  Parent
  /// directories are not required to exist (flat namespace keyed by path).
  void mkdir(const std::string& path, const StripeSettings& settings);

  /// Striping settings a file created under `path` would receive (deepest
  /// matching directory prefix; falls back to the deployment default).
  StripeSettings settingsFor(const std::string& path) const;

  /// Create a file; its targets are chosen by the configured heuristic.
  /// The stripe count is clamped to the number of online targets.
  FileHandle create(const std::string& path);

  /// Create a file with an explicitly pinned target list (used by benches
  /// that need a specific allocation, e.g. Fig. 13's shared-vs-disjoint
  /// comparison) and chunk size.
  FileHandle createPinned(const std::string& path, std::vector<std::size_t> targets,
                          util::Bytes chunkSize);

  const FileInfo& info(FileHandle handle) const;
  std::size_t fileCount() const { return files_.size(); }

  /// Asynchronously write [offset, offset+length) of `handle` from compute
  /// node `node`.  `queueWeight` is the outstanding-request weight this
  /// write contributes to each crossed resource (the IOR runner computes it
  /// from the node's worker budget).  `done` fires (once) with the
  /// completion time after the last byte lands.
  void writeAsync(std::size_t node, FileHandle handle, util::Bytes offset, util::Bytes length,
                  double queueWeight, std::function<void(util::Seconds)> done);

  /// Asynchronously read [offset, offset+length) of `handle` into compute
  /// node `node`.  The range must lie within the file.  Reads cross the same
  /// resources as writes (the paper expects read behaviour to mirror write
  /// behaviour w.r.t. target allocation; Section III-B).
  void readAsync(std::size_t node, FileHandle handle, util::Bytes offset, util::Bytes length,
                 double queueWeight, std::function<void(util::Seconds)> done);

  /// Set a file's logical size without moving data (ftruncate semantics;
  /// lets tests and read benchmarks materialize pre-existing files).
  void truncate(FileHandle handle, util::Bytes size);

  /// The chooser in use (inspectable by tests).
  TargetChooser& chooser() { return *chooser_; }

  // -- Rebalancing hooks (src/control/; see DESIGN.md §2.6). ---------------

  /// Wrap the configured chooser in a WeightedChooser consulting the mgmtd
  /// per-host weights (the controller's retarget lever).  Idempotent; with
  /// uniform weights the wrapper is behaviourally invisible.
  void enableWeightedChooser();

  /// Target currently serving a stripe slot: the pattern target, or its
  /// substitute after a failover/migration.
  std::size_t effectiveTarget(FileHandle handle, std::size_t slot) const;

  /// Bytes of the file currently resident on a stripe slot.
  util::Bytes slotBytes(FileHandle handle, std::size_t slot) const;

  /// Migrate a stripe slot to `newTarget`: future chunks of the slot address
  /// the new target immediately (substitute entry), while the resident bytes
  /// stream over as a background server-to-server flow with the given queue
  /// weight and rate cap (0 = unlimited), reusing the resync flow model.
  /// `done` fires with the flow stats when the stream lands; cancel via
  /// Deployment::fluid().cancelFlow.  Returns the flow id.
  sim::FlowId migrateSlot(FileHandle handle, std::size_t slot, std::size_t newTarget,
                          double queueWeight, double rateCap,
                          std::function<void(const sim::FlowStats&)> done);

  // -- Mid-run fault semantics (ClientFaultPolicy; see src/faults/). -------

  /// Cumulative client-side failure accounting across all transfers.
  const ClientFaultStats& faultStats() const { return faultStats_; }

  /// True once a chunk failure aborted the job (strict mode, or degraded
  /// mode with no surviving target).  Runners stop issuing new work.
  bool faultsAborted() const { return faultStats_.aborted; }

  /// Substitute target a stripe slot of `handle` failed over to, if any
  /// (inspectable by tests; keyed by slot index within the stripe pattern).
  std::map<std::size_t, std::size_t> degradedSlots(FileHandle handle) const;

  // -- Buddy mirroring (MirrorPolicy; see DESIGN.md §2.4). -----------------

  /// Cumulative mirroring/resync accounting across all transfers.
  const MirrorStats& mirrorStats() const { return mirrorStats_; }

  /// True while a background resync flow is streaming group `id`'s delta.
  bool resyncActive(std::size_t id) const;

  // -- Hedged writes (HedgePolicy; see DESIGN.md §2.9). --------------------

  /// Cumulative hedging accounting across all transfers.
  const HedgeStats& hedgeStats() const { return hedgeStats_; }

  /// In-flight chunks currently tracked for hedging (inspectable by tests).
  std::size_t hedgedInFlight() const { return hedged_.size(); }

  /// Quarantine mitigation for mirrored files: switch over every good
  /// mirror group whose *current primary* sits on `host` to its replica
  /// (the mirrored equivalent of a hedge; gated on HedgePolicy::enabled).
  /// Called by the HealthMonitor, deferred out of observer dispatch.
  void hedgeMirrorGroupsOnHost(std::size_t host);

  // -- Multi-tenant QoS (qos::QosManager; see DESIGN.md §2.8). -------------

  /// Attach a per-application QoS manager: every first attempt of a write
  /// chunk then asks the manager for admission (token-bucket throttling by
  /// deferred issue; re-issues after a timeout/failover are never charged
  /// again).  Null detaches.  The manager must outlive all transfers.
  void setQosManager(qos::QosManager* qos) { qos_ = qos; }
  qos::QosManager* qosManager() const { return qos_; }

 private:
  /// Shared bookkeeping of one writeAsync/readAsync call: the operation
  /// completes when every chunk resolved (successfully or by abort).
  struct TransferState {
    std::size_t node = 0;
    std::size_t handleValue = 0;
    bool isWrite = false;
    double queueWeight = 0.0;
    std::size_t pendingChunks = 0;
    std::function<void(util::Seconds)> done;
  };

  void transferAsync(std::size_t node, FileHandle handle, util::Bytes offset,
                     util::Bytes length, double queueWeight, bool isWrite,
                     std::function<void(util::Seconds)> done);

  /// Issue one chunk flow.  `failedAt` < 0 marks a first attempt; >= 0 the
  /// virtual time this chunk's failure was detected (re-issues).  With a
  /// QosManager attached, first-attempt write chunks pass through token
  /// admission and may start later (deferred issue); re-issues carry bytes
  /// already paid for and bypass it.
  void issueChunk(const std::shared_ptr<TransferState>& transfer, std::size_t stripeSlot,
                  util::Bytes bytes, util::Seconds failedAt);
  /// The post-admission half of issueChunk (also the resume target of a
  /// deferred chunk, whose tokens were spent at the wake).
  void issueChunkAdmitted(const std::shared_ptr<TransferState>& transfer,
                          std::size_t stripeSlot, util::Bytes bytes, util::Seconds failedAt);
  /// Client I/O timeout: re-armed while the flow runs; on an offline target
  /// it cancels the flow and enters the retry/failover ladder.
  void armWatchdog(const std::shared_ptr<TransferState>& transfer, std::size_t stripeSlot,
                   util::Bytes bytes, std::size_t target, sim::FlowId flow,
                   util::Seconds failedAt);
  /// Exponential-backoff wait number `attempt`; retries the original target
  /// if it recovered, else escalates and finally fails over.
  void scheduleRetry(const std::shared_ptr<TransferState>& transfer, std::size_t stripeSlot,
                     util::Bytes bytes, std::size_t target, int attempt,
                     util::Seconds failedAt);
  /// Move the chunk's slot to a surviving target (sampled from rng_).
  /// `rewrite` charges the chunk's bytes to the rewritten counter.
  void failOverChunk(const std::shared_ptr<TransferState>& transfer, std::size_t stripeSlot,
                     util::Bytes bytes, util::Seconds failedAt, bool rewrite);
  /// Mark one chunk resolved; fires the transfer's done when all are.
  void finishChunk(const std::shared_ptr<TransferState>& transfer);

  /// One in-flight plain write chunk tracked for hedging: the original leg
  /// plus at most one live hedge leg; first to land wins, loser cancelled.
  struct HedgeTrack {
    std::shared_ptr<TransferState> transfer;
    std::size_t stripeSlot = 0;
    util::Bytes bytes = 0;
    std::size_t target = 0;       ///< target of the original leg
    sim::FlowId primaryFlow{};
    sim::FlowId hedgeFlow{};      ///< value 0 = no live hedge leg
    std::size_t hedgeTarget = 0;
    int hedges = 0;               ///< hedge legs issued so far
    std::vector<std::size_t> tried;  ///< targets already given a leg
    util::Seconds failedAt = -1.0;
    bool resolved = false;
  };

  /// Periodic per-chunk lag check (HedgePolicy::deadline cadence).
  void armHedge(const std::shared_ptr<HedgeTrack>& track);
  void hedgeCheck(const std::shared_ptr<HedgeTrack>& track);
  /// Deterministic alternate-target choice: prefers the original target's
  /// host (unless quarantined), then other non-quarantined hosts, then any
  /// online target; within a class lowest (used, index).  Zero randomness.
  bool pickHedgeTarget(const HedgeTrack& track, std::size_t& out) const;
  void issueHedge(const std::shared_ptr<HedgeTrack>& track, std::size_t alt);
  /// First leg landed: cancel the loser, re-home the slot on a hedge win,
  /// resolve the chunk.
  void resolveHedged(const std::shared_ptr<HedgeTrack>& track, bool hedgeWon,
                     util::MiBps legRate);
  /// The watchdog ladder took the chunk over (registry-offline target):
  /// forget the track and cancel its hedge leg without resolving the chunk.
  void dropHedgeTrack(sim::FlowId primaryFlow);
  /// The good-secondary switchover (factored from onMirrorTargetOffline so
  /// quarantine mitigation can reuse it): promote the secondary, re-send the
  /// untransferred remainder of in-flight chunks, chain a resync if possible.
  void switchMirrorPrimary(std::size_t group);

  /// One in-flight chunk of a mirrored file: a primary flow plus (for
  /// consistent writes) a replica flow; the chunk acks when both landed.
  struct MirrorChunk {
    std::shared_ptr<TransferState> transfer;
    std::size_t stripeSlot = 0;
    util::Bytes bytes = 0;
    std::size_t group = 0;
    sim::FlowId primaryFlow{};
    sim::FlowId replicaFlow{};
    std::size_t remainingFlows = 0;
    util::Seconds failedAt = -1.0;
  };

  void issueMirroredChunk(const std::shared_ptr<TransferState>& transfer,
                          std::size_t stripeSlot, util::Bytes bytes, std::size_t group,
                          util::Seconds failedAt);
  void mirrorFlowDone(const std::shared_ptr<MirrorChunk>& chunk, bool primarySide);
  void retireMirrorChunk(const std::shared_ptr<MirrorChunk>& chunk);
  void resolveMirrorChunk(const std::shared_ptr<MirrorChunk>& chunk);
  /// Registry switchover signal handlers (mgmtd target-state listener).
  void onMirrorTargetOffline(std::size_t target);
  void onMirrorTargetOnline(std::size_t target);
  /// Start a resync round if the group needs one and both members are up.
  void maybeStartResync(std::size_t group);
  void startResyncRound(std::size_t group);
  void cancelResync(std::size_t group);

  Deployment& deployment_;
  util::Rng rng_;
  std::unique_ptr<TargetChooser> chooser_;
  std::map<std::string, StripeSettings> directories_;
  std::vector<FileInfo> files_;
  ClientFaultStats faultStats_;
  /// (file handle, stripe slot) -> substitute target after a failover.
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> substitutes_;
  MirrorStats mirrorStats_;
  HedgeStats hedgeStats_;
  /// Unresolved hedge tracks keyed by the original leg's flow id (also the
  /// peer set for the lag median).
  std::map<std::uint64_t, std::shared_ptr<HedgeTrack>> hedged_;
  /// EWMA of completed winning legs' mean rates: the lag reference when the
  /// in-flight peer set is itself sick (e.g. only the chunks behind a
  /// stuttering link remain, so their median cannot expose them).
  util::MiBps hedgeRefRate_ = 0.0;
  /// In-flight mirrored chunks per group (index == group id).
  std::vector<std::vector<std::shared_ptr<MirrorChunk>>> inflightMirror_;
  /// Active background resync flow per group (id 0 == none).
  std::vector<sim::FlowId> resync_;
  /// Per-application write admission (null = unmanaged; see DESIGN.md §2.8).
  qos::QosManager* qos_ = nullptr;
};

}  // namespace beesim::beegfs
