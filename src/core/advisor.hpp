// Stripe-count advisor: the actionable output of the paper.
//
// Given per-stripe-count bandwidth samples (with their allocations), the
// advisor scores each candidate count and recommends a system default.  The
// scoring encodes the paper's reasoning:
//
//   * expected bandwidth matters (Scenario 2: more targets -> more speed);
//   * *worst-allocation* bandwidth matters even more for a system default --
//     a count whose performance depends on the luck of target placement
//     (e.g. 4 on PlaFRIM/Scenario 1) is a bad default even if its best case
//     is fine (Lesson #4);
//   * predictability (low spread) is a tie-breaker (Lesson #5).
//
// On both PlaFRIM scenarios the advisor recommends the maximum count, which
// is exactly the paper's conclusion; the advisor exists so the analysis can
// be re-run on *other* systems (goal (ii) of the paper).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/analyzer.hpp"

namespace beesim::core {

struct CountAssessment {
  unsigned stripeCount = 0;
  double meanBandwidth = 0.0;
  /// Mean bandwidth of the worst-performing allocation group.
  double worstAllocationMean = 0.0;
  /// Mean of the best allocation group.
  double bestAllocationMean = 0.0;
  /// Coefficient of variation over all samples of this count.
  double cv = 0.0;
  /// True when the count's performance is materially allocation-dependent
  /// (best/worst allocation means differ by more than the tolerance).
  bool allocationSensitive = false;
  std::size_t samples = 0;
  double score = 0.0;
};

struct Recommendation {
  unsigned stripeCount = 0;
  std::vector<CountAssessment> assessments;  // ascending stripe count
  /// Human-readable rationale ("lesson learned" style).
  std::string rationale;
};

struct AdvisorOptions {
  /// Relative best/worst allocation gap above which a count is flagged
  /// allocation-sensitive.
  double allocationSensitivityTolerance = 0.10;
  /// Weight of worst-case vs mean bandwidth in the score
  /// (score = w * worst + (1-w) * mean, scaled by a predictability factor).
  double worstCaseWeight = 0.6;
  /// Predictability penalty strength: score *= 1 / (1 + cvPenalty * cv).
  double cvPenalty = 0.5;
};

class StripeCountAdvisor {
 public:
  explicit StripeCountAdvisor(AdvisorOptions options = {});

  /// Feed one measurement.
  void add(unsigned stripeCount, Allocation allocation, double bandwidth);

  /// Assess all counts seen so far.  Throws ContractError when empty.
  Recommendation recommend() const;

 private:
  AdvisorOptions options_;
  std::map<unsigned, AllocationAnalyzer> byCount_;
};

}  // namespace beesim::core
