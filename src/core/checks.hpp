// Shape checks: machine-verifiable versions of the paper's qualitative
// claims.
//
// Reproducing a benchmarking paper on a simulator cannot (and should not)
// match absolute MiB/s; what must hold are the *shapes*: who wins, by
// roughly what factor, where the crossovers fall, which distributions are
// bimodal.  Every bench binary ends with a checklist of these assertions so
// `bench_output.txt` documents the reproduction status line by line.
#pragma once

#include <string>
#include <vector>

namespace beesim::core {

struct Check {
  std::string name;
  bool passed = false;
  std::string detail;
};

class CheckList {
 public:
  explicit CheckList(std::string title);

  /// Record one check.
  void expect(const std::string& name, bool condition, const std::string& detail = "");

  /// expect(a `relation` b) with the values embedded in the detail.
  void expectGreater(const std::string& name, double a, double b);
  void expectNear(const std::string& name, double value, double reference,
                  double relativeTolerance);
  /// |a/b - ratio| within tolerance (for "X is ~R times Y" claims).
  void expectRatio(const std::string& name, double a, double b, double ratio,
                   double relativeTolerance);

  bool allPassed() const;
  const std::vector<Check>& checks() const { return checks_; }

  /// Render as a "[PASS]/[FAIL]" list.
  std::string render() const;

 private:
  std::string title_;
  std::vector<Check> checks_;
};

}  // namespace beesim::core
