#include "core/sharing.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::core {

void SharingImpactAnalyzer::addShared(double bandwidth) { shared_.push_back(bandwidth); }

void SharingImpactAnalyzer::addDisjoint(double bandwidth) { disjoint_.push_back(bandwidth); }

SharingVerdict SharingImpactAnalyzer::analyze(double alpha, double equivalenceMargin) const {
  BEESIM_ASSERT(shared_.size() >= 2 && disjoint_.size() >= 2,
                "sharing analysis needs >= 2 samples per group");
  BEESIM_ASSERT(equivalenceMargin >= 0.0, "equivalence margin must be >= 0");

  SharingVerdict verdict;
  verdict.alpha = alpha;
  verdict.equivalenceMargin = equivalenceMargin;
  verdict.normalityShared = stats::ksNormalTestFitted(shared_);
  verdict.normalityDisjoint = stats::ksNormalTestFitted(disjoint_);
  verdict.welch = stats::welchTTest(shared_, disjoint_);
  const double scale = std::max(std::fabs(verdict.welch.meanB), 1e-12);
  const double relativeDifference = std::fabs(verdict.welch.meanDifference) / scale;
  verdict.sharingHarmless =
      !verdict.welch.significantAt(alpha) || relativeDifference <= equivalenceMargin;

  verdict.summary =
      "shared (n=" + std::to_string(shared_.size()) + ", mean " +
      util::fmt(verdict.welch.meanA, 1) + " MiB/s) vs disjoint (n=" +
      std::to_string(disjoint_.size()) + ", mean " + util::fmt(verdict.welch.meanB, 1) +
      " MiB/s): Welch p=" + util::fmt(verdict.welch.pValue, 4) +
      (verdict.sharingHarmless
           ? " -- cannot reject equal means; sharing OSTs shows no significant impact"
           : " -- means differ significantly; sharing OSTs impacts performance");
  return verdict;
}

}  // namespace beesim::core
