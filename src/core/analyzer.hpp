// Allocation analyzer: re-bins bandwidth measurements by their (min,max)
// allocation -- the transformation that turns Fig. 6 into Figs. 8/10 and
// exposes the cause of the bimodal clouds.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/allocation.hpp"
#include "stats/summary.hpp"

namespace beesim::core {

/// One measurement tagged with its allocation.
struct AllocatedMeasurement {
  Allocation allocation;
  double bandwidth = 0.0;
};

struct AllocationGroup {
  std::string key;              // "(1,3)"
  double balanceRatio = 0.0;    // min/max of that allocation
  std::vector<double> bandwidths;
  stats::Summary summary;
  stats::BoxPlot box;
};

class AllocationAnalyzer {
 public:
  void add(Allocation allocation, double bandwidth);

  /// Groups ordered by ascending mean bandwidth (the paper orders Fig. 8's
  /// x-axis roughly by balance, which coincides with mean in Scenario 1).
  std::vector<AllocationGroup> groups() const;

  /// Pearson correlation between balance ratio and bandwidth across all
  /// measurements (the paper: "performance increases with the min/max
  /// ratio").
  double balanceBandwidthCorrelation() const;

  std::size_t measurementCount() const { return measurements_.size(); }

 private:
  std::vector<AllocatedMeasurement> measurements_;
};

}  // namespace beesim::core
