#include "core/advisor.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::core {

StripeCountAdvisor::StripeCountAdvisor(AdvisorOptions options) : options_(options) {
  BEESIM_ASSERT(options_.worstCaseWeight >= 0.0 && options_.worstCaseWeight <= 1.0,
                "worst-case weight must be in [0, 1]");
  BEESIM_ASSERT(options_.cvPenalty >= 0.0, "cv penalty must be >= 0");
}

void StripeCountAdvisor::add(unsigned stripeCount, Allocation allocation, double bandwidth) {
  BEESIM_ASSERT(stripeCount >= 1, "stripe count must be >= 1");
  byCount_[stripeCount].add(std::move(allocation), bandwidth);
}

Recommendation StripeCountAdvisor::recommend() const {
  BEESIM_ASSERT(!byCount_.empty(), "advisor has no measurements");

  Recommendation rec;
  for (const auto& [count, analyzer] : byCount_) {
    const auto groups = analyzer.groups();
    BEESIM_ASSERT(!groups.empty(), "count with no allocation groups");

    CountAssessment a;
    a.stripeCount = count;
    a.samples = analyzer.measurementCount();

    std::vector<double> all;
    for (const auto& g : groups) {
      all.insert(all.end(), g.bandwidths.begin(), g.bandwidths.end());
    }
    const auto overall = stats::summarize(all);
    a.meanBandwidth = overall.mean;
    a.cv = overall.cv();
    a.worstAllocationMean = groups.front().summary.mean;  // groups sorted by mean
    a.bestAllocationMean = groups.back().summary.mean;
    a.allocationSensitive =
        a.bestAllocationMean > 0.0 &&
        (a.bestAllocationMean - a.worstAllocationMean) / a.bestAllocationMean >
            options_.allocationSensitivityTolerance;

    const double blended = options_.worstCaseWeight * a.worstAllocationMean +
                           (1.0 - options_.worstCaseWeight) * a.meanBandwidth;
    a.score = blended / (1.0 + options_.cvPenalty * a.cv);
    rec.assessments.push_back(a);
  }

  const auto best = std::max_element(
      rec.assessments.begin(), rec.assessments.end(),
      [](const CountAssessment& x, const CountAssessment& y) { return x.score < y.score; });
  rec.stripeCount = best->stripeCount;

  // Rationale in the style of the paper's lessons.
  const auto& chosen = *best;
  rec.rationale = "Recommend stripe count " + std::to_string(chosen.stripeCount) + ": mean " +
                  util::fmt(chosen.meanBandwidth, 0) + " MiB/s, worst-allocation mean " +
                  util::fmt(chosen.worstAllocationMean, 0) + " MiB/s";
  if (!chosen.allocationSensitive) {
    rec.rationale += "; performance does not depend on target placement";
  }
  for (const auto& a : rec.assessments) {
    if (a.stripeCount != chosen.stripeCount && a.allocationSensitive) {
      rec.rationale += ". Count " + std::to_string(a.stripeCount) +
                       " is allocation-sensitive (worst " +
                       util::fmt(a.worstAllocationMean, 0) + " vs best " +
                       util::fmt(a.bestAllocationMean, 0) + " MiB/s)";
    }
  }
  rec.rationale += ".";
  return rec;
}

}  // namespace beesim::core
