// Sharing-impact analysis (Section IV-D, Fig. 13).
//
// Question: do concurrent applications lose bandwidth *because* they share
// storage targets?  Method (the paper's): collect per-application bandwidths
// of concurrent runs, split them into "all targets shared" and "no targets
// shared", verify approximate normality (Kolmogorov-Smirnov), and compare
// the groups with Welch's unequal-variance t-test.  The paper's verdict
// (p = 0.9031): sharing cannot be shown to matter.
#pragma once

#include <string>
#include <vector>

#include "stats/ks.hpp"
#include "stats/ttest.hpp"

namespace beesim::core {

struct SharingVerdict {
  stats::WelchResult welch;
  stats::KsResult normalityShared;
  stats::KsResult normalityDisjoint;
  double alpha = 0.05;
  double equivalenceMargin = 0.03;
  /// True when sharing cannot be shown to matter: either the Welch test
  /// fails to reject equal means (the paper's case, p = 0.9031), or the
  /// difference -- however statistically visible -- is within the practical
  /// equivalence margin.  The second clause matters for simulation studies:
  /// with the production system's variance removed, arbitrarily small
  /// systematic differences become "significant" at any fixed alpha.
  bool sharingHarmless = true;
  std::string summary;
};

class SharingImpactAnalyzer {
 public:
  /// Per-application bandwidth from a run where the applications shared all
  /// their targets.
  void addShared(double bandwidth);
  /// ... where the applications' target sets were disjoint.
  void addDisjoint(double bandwidth);

  std::size_t sharedCount() const { return shared_.size(); }
  std::size_t disjointCount() const { return disjoint_.size(); }

  /// Run the analysis; needs >= 2 samples in each group.
  /// `equivalenceMargin`: relative mean difference below which sharing is
  /// considered practically harmless even if statistically distinguishable.
  SharingVerdict analyze(double alpha = 0.05, double equivalenceMargin = 0.03) const;

 private:
  std::vector<double> shared_;
  std::vector<double> disjoint_;
};

}  // namespace beesim::core
