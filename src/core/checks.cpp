#include "core/checks.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/table.hpp"

namespace beesim::core {

CheckList::CheckList(std::string title) : title_(std::move(title)) {}

void CheckList::expect(const std::string& name, bool condition, const std::string& detail) {
  checks_.push_back(Check{name, condition, detail});
}

void CheckList::expectGreater(const std::string& name, double a, double b) {
  // Three decimals: several checks compare coefficients of variation (~1e-2).
  expect(name, a > b, util::fmt(a, 3) + " > " + util::fmt(b, 3));
}

void CheckList::expectNear(const std::string& name, double value, double reference,
                           double relativeTolerance) {
  BEESIM_ASSERT(relativeTolerance >= 0.0, "tolerance must be >= 0");
  const double scale = std::fabs(reference) > 0.0 ? std::fabs(reference) : 1.0;
  const bool ok = std::fabs(value - reference) <= relativeTolerance * scale;
  expect(name, ok,
         util::fmt(value, 1) + " vs " + util::fmt(reference, 1) + " (tol " +
             util::fmt(100.0 * relativeTolerance, 0) + "%)");
}

void CheckList::expectRatio(const std::string& name, double a, double b, double ratio,
                            double relativeTolerance) {
  BEESIM_ASSERT(b != 0.0, "ratio check against zero");
  expectNear(name, a / b, ratio, relativeTolerance);
}

bool CheckList::allPassed() const {
  for (const auto& check : checks_) {
    if (!check.passed) return false;
  }
  return true;
}

std::string CheckList::render() const {
  std::string out = "\n== shape checks: " + title_ + " ==\n";
  for (const auto& check : checks_) {
    out += check.passed ? "[PASS] " : "[FAIL] ";
    out += check.name;
    if (!check.detail.empty()) out += "  (" + check.detail + ")";
    out += '\n';
  }
  out += allPassed() ? "ALL CHECKS PASSED\n" : "SOME CHECKS FAILED\n";
  return out;
}

}  // namespace beesim::core
