#include "core/analytic.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace beesim::core {

util::MiBps networkBound(std::size_t clientNodes, std::size_t servers,
                         util::MiBps linkBandwidth) {
  BEESIM_ASSERT(clientNodes >= 1 && servers >= 1, "need at least one node and one server");
  BEESIM_ASSERT(linkBandwidth > 0.0, "link bandwidth must be positive");
  return linkBandwidth * static_cast<double>(std::min(clientNodes, servers));
}

util::MiBps networkLimitedBandwidth(const Allocation& allocation, util::MiBps linkBandwidth) {
  BEESIM_ASSERT(linkBandwidth > 0.0, "link bandwidth must be positive");
  // Data is spread evenly over targets (contiguous striping), so host h
  // carries fraction A_h / total; the run ends when the hottest host drains
  // its share through its link.
  return linkBandwidth / allocation.hotHostFraction();
}

util::Seconds networkLimitedWriteTime(util::Bytes volume, const Allocation& allocation,
                                      util::MiBps linkBandwidth) {
  BEESIM_ASSERT(volume > 0, "volume must be positive");
  return util::toMiB(volume) / networkLimitedBandwidth(allocation, linkBandwidth);
}

std::vector<RateSegment> twoTargetTimeline(util::Bytes volume, bool balanced,
                                           util::MiBps linkBandwidth) {
  BEESIM_ASSERT(volume > 0, "volume must be positive");
  BEESIM_ASSERT(linkBandwidth > 0.0, "link bandwidth must be positive");
  const double volumeMiB = util::toMiB(volume);
  std::vector<RateSegment> timeline;
  if (balanced) {
    // (1,1): both servers stream at B until V/2 each is written.
    timeline.push_back(RateSegment{0.0, volumeMiB / (2.0 * linkBandwidth),
                                   2.0 * linkBandwidth});
  } else {
    // (0,2): one server's link carries everything.
    timeline.push_back(RateSegment{0.0, volumeMiB / linkBandwidth, linkBandwidth});
  }
  return timeline;
}

}  // namespace beesim::core
