#include "core/allocation.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace beesim::core {

Allocation::Allocation(const std::vector<std::size_t>& targets,
                       const topo::ClusterConfig& cluster) {
  BEESIM_ASSERT(!targets.empty(), "allocation of an empty target set");
  perHost_.assign(cluster.hosts.size(), 0);
  for (const auto flat : targets) {
    const auto [host, indexInHost] = cluster.targetLocation(flat);
    (void)indexInHost;
    ++perHost_[host];
  }
}

Allocation::Allocation(std::vector<std::size_t> perHost) : perHost_(std::move(perHost)) {
  BEESIM_ASSERT(!perHost_.empty(), "allocation needs at least one host");
  BEESIM_ASSERT(totalTargets() > 0, "allocation must use at least one target");
}

std::size_t Allocation::totalTargets() const {
  return std::accumulate(perHost_.begin(), perHost_.end(), std::size_t{0});
}

std::size_t Allocation::minPerHost() const {
  return *std::min_element(perHost_.begin(), perHost_.end());
}

std::size_t Allocation::maxPerHost() const {
  return *std::max_element(perHost_.begin(), perHost_.end());
}

std::string Allocation::key() const {
  auto sorted = perHost_;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "(";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i) out += ',';
    out += std::to_string(sorted[i]);
  }
  out += ')';
  return out;
}

double Allocation::balanceRatio() const {
  const auto max = maxPerHost();
  BEESIM_ASSERT(max > 0, "allocation must use at least one target");
  return static_cast<double>(minPerHost()) / static_cast<double>(max);
}

bool Allocation::isBalanced() const {
  return minPerHost() == maxPerHost() && minPerHost() > 0;
}

double Allocation::hotHostFraction() const {
  return static_cast<double>(maxPerHost()) / static_cast<double>(totalTargets());
}

}  // namespace beesim::core
