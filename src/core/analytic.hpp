// Closed-form models of the paper's two illustrative figures.
//
// Fig. 3: N compute nodes access M storage servers through same-capacity
// links; the network bound is B * min(N, M).
//
// Fig. 9: writing a volume V over two targets, either both on one server
// ((0,2)) or one per server ((1,1)), with per-server link bandwidth B.  The
// balanced placement streams at 2B and finishes in half the time.
//
// The general form (used by the Scenario-1 shape checks): a write striped
// over allocation A is drained at the aggregate rate at which its hottest
// server can forward data, i.e. B * total / max_h A_h, capped by B * #used
// hosts.
#pragma once

#include <cstddef>
#include <vector>

#include "core/allocation.hpp"
#include "util/units.hpp"

namespace beesim::core {

/// Fig. 3: network-bound aggregate bandwidth of N client nodes against M
/// servers with per-link bandwidth B.
util::MiBps networkBound(std::size_t clientNodes, std::size_t servers, util::MiBps linkBandwidth);

/// Completion time of writing `volume` over `allocation` when each storage
/// host is reached through one link of `linkBandwidth` (Scenario 1 steady
/// state; Fig. 9 generalized).
util::Seconds networkLimitedWriteTime(util::Bytes volume, const Allocation& allocation,
                                      util::MiBps linkBandwidth);

/// The corresponding steady-state bandwidth:
/// linkBandwidth / hotHostFraction == linkBandwidth * total / max_h.
util::MiBps networkLimitedBandwidth(const Allocation& allocation, util::MiBps linkBandwidth);

/// Fig. 9's time series: per-server instantaneous bandwidth over time for a
/// two-target write of `volume`, for both placements.  Each entry is a
/// (startTime, endTime, totalRate) segment.
struct RateSegment {
  util::Seconds begin = 0.0;
  util::Seconds end = 0.0;
  util::MiBps totalRate = 0.0;
};

std::vector<RateSegment> twoTargetTimeline(util::Bytes volume, bool balanced,
                                           util::MiBps linkBandwidth);

}  // namespace beesim::core
