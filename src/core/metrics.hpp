// Shared scalar metrics derived from per-server load vectors.
//
// The link-imbalance index is the simulator's one-number summary of the
// paper's (min,max) balance story, and it is consumed in three places: the
// FlowTracer's virtual-time metrics series, the harness' per-run utilization
// measurement and the CLI's traced-run summary table.  All three MUST agree
// -- a rebalancing controller keyed on the tracer's index would otherwise
// disagree with what campaigns report -- so the definition lives here, once.
//
// Header-only and dependency-free on purpose: the sim layer sits below core
// in the library graph and can include this without linking beesim_core.
#pragma once

#include <algorithm>
#include <cstddef>
#include <span>

namespace beesim::core {

/// Link-imbalance index over per-link loads (rates, MiB, any same-unit
/// vector): max(load) / mean(load).  1 = perfectly balanced, N = everything
/// through one of N links, 0 = all links idle (sum <= 0).
///
/// This is the FlowTracer's definition (peak * N / sum), which
/// ext_utilization validated against the paper's Fig. 8 splits: 2.0 for a
/// (0,4) placement, 1.5 for (1,3), 1.0 for balanced.
inline double linkImbalance(std::span<const double> loads) {
  double sum = 0.0;
  double peak = 0.0;
  for (const double load : loads) {
    sum += load;
    peak = std::max(peak, load);
  }
  if (sum <= 0.0) return 0.0;
  return peak * static_cast<double>(loads.size()) / sum;
}

}  // namespace beesim::core
