#include "core/analyzer.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace beesim::core {

void AllocationAnalyzer::add(Allocation allocation, double bandwidth) {
  measurements_.push_back(AllocatedMeasurement{std::move(allocation), bandwidth});
}

std::vector<AllocationGroup> AllocationAnalyzer::groups() const {
  std::map<std::string, AllocationGroup> byKey;
  for (const auto& m : measurements_) {
    auto& group = byKey[m.allocation.key()];
    if (group.bandwidths.empty()) {
      group.key = m.allocation.key();
      group.balanceRatio = m.allocation.balanceRatio();
    }
    group.bandwidths.push_back(m.bandwidth);
  }
  std::vector<AllocationGroup> out;
  out.reserve(byKey.size());
  for (auto& [key, group] : byKey) {
    group.summary = stats::summarize(group.bandwidths);
    group.box = stats::boxPlot(group.bandwidths);
    out.push_back(std::move(group));
  }
  std::sort(out.begin(), out.end(), [](const AllocationGroup& a, const AllocationGroup& b) {
    return a.summary.mean < b.summary.mean;
  });
  return out;
}

double AllocationAnalyzer::balanceBandwidthCorrelation() const {
  BEESIM_ASSERT(measurements_.size() >= 2, "correlation needs >= 2 measurements");
  double meanX = 0.0;
  double meanY = 0.0;
  for (const auto& m : measurements_) {
    meanX += m.allocation.balanceRatio();
    meanY += m.bandwidth;
  }
  meanX /= static_cast<double>(measurements_.size());
  meanY /= static_cast<double>(measurements_.size());

  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (const auto& m : measurements_) {
    const double dx = m.allocation.balanceRatio() - meanX;
    const double dy = m.bandwidth - meanY;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace beesim::core
