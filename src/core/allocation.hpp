// OST allocation analysis -- the paper's central abstraction (Section IV-C).
//
// An allocation describes how a file's stripe targets are distributed over
// the storage hosts.  For PlaFRIM's two servers the paper writes it as
// (min, max), e.g. a four-target file with one target on one server and
// three on the other is "(1,3)" (Fig. 7).  The generalization to H hosts is
// the sorted per-host count vector.
#pragma once

#include <string>
#include <vector>

#include "topology/cluster.hpp"

namespace beesim::core {

class Allocation {
 public:
  /// Classify `targets` (flat indices) on `cluster`.
  Allocation(const std::vector<std::size_t>& targets, const topo::ClusterConfig& cluster);

  /// Construct directly from per-host counts (analytic studies).
  explicit Allocation(std::vector<std::size_t> perHost);

  /// Targets on each host (host order preserved).
  const std::vector<std::size_t>& perHost() const { return perHost_; }

  std::size_t totalTargets() const;

  /// Fewest / most targets on any host.
  std::size_t minPerHost() const;
  std::size_t maxPerHost() const;

  /// The paper's "(min,max)" key for two-host systems; for more hosts the
  /// sorted count tuple, e.g. "(0,2,3)".
  std::string key() const;

  /// min/max ratio in [0,1]; 1 = perfectly balanced, 0 = some host unused
  /// (with >= 2 hosts).  The paper shows Scenario-1 performance increases
  /// with this ratio (Fig. 8).
  double balanceRatio() const;

  /// True when every *used* count is equal and every host is used.
  bool isBalanced() const;

  /// Largest fraction of the data carried by a single host
  /// (max / total).  Scenario-1 steady-state bandwidth is
  /// linkBandwidth / hotHostFraction (see analytic.hpp).
  double hotHostFraction() const;

  friend bool operator==(const Allocation& a, const Allocation& b) {
    return a.perHost_ == b.perHost_;
  }

 private:
  std::vector<std::size_t> perHost_;
};

}  // namespace beesim::core
