// Quickstart: boot a simulated PlaFRIM (Scenario 2), run one IOR-style
// write, and print what the paper's tooling would report.
//
//   $ ./quickstart
//
// Walks through the whole public API surface in ~40 lines: topology factory,
// deployment, file system, IOR runner, allocation analysis.
#include <cstdio>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "core/allocation.hpp"
#include "ior/runner.hpp"
#include "sim/fluid.hpp"
#include "topology/plafrim.hpp"
#include "util/units.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main() {
  // 1. Describe the hardware: PlaFRIM with 16 Bora nodes on Omni-Path
  //    (Scenario 2: storage slower than network).
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 16);

  // 2. Boot a BeeGFS deployment on it (PlaFRIM production defaults: stripe
  //    count 4, 512 KiB chunks, round-robin target choice).
  sim::FluidSimulator fluid;
  beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(7));
  beegfs::FileSystem fs(deployment, util::Rng(8));

  // 3. Run IOR: 16 nodes x 8 processes, shared file, 32 GiB total, 1 MiB
  //    transfers (the paper's configuration).
  const auto job = ior::IorJob::onFirstNodes(16, 8);
  ior::IorOptions options;
  options.blockSize = ior::blockSizeForTotal(32_GiB, job.ranks());
  const auto result = ior::runIor(fs, job, options);

  // 4. Report.
  const core::Allocation allocation(result.targetsUsed, cluster);
  std::printf("cluster        : %s\n", topo::scenarioLabel(topo::Scenario::kOmniPath100G));
  std::printf("workload       : %s\n", options.describe().c_str());
  std::printf("ranks          : %d on %zu nodes\n", job.ranks(), job.nodeIds.size());
  std::printf("wrote          : %s in %s (+%s metadata)\n",
              util::formatBytes(result.totalBytes).c_str(),
              util::formatSeconds(result.end - result.start).c_str(),
              util::formatSeconds(result.metaTime).c_str());
  std::printf("bandwidth      : %s\n", util::formatBandwidth(result.bandwidth).c_str());
  std::printf("OST allocation : %s over hosts (balance %.2f)\n", allocation.key().c_str(),
              allocation.balanceRatio());
  std::printf("targets        : ");
  for (const auto t : result.targetsUsed) std::printf("%d ", cluster.beegfsTargetNum(t));
  std::printf("\n");
  return 0;
}
