// Checkpoint scheduling: when two periodic applications share the PFS, how
// much does the *phase* between their bursts matter?
//
//   $ ./checkpoint_scheduling [offset-seconds] [repetitions]
//
// Two 8-node applications compute for 30 s and then write a 16 GiB
// checkpoint, four times each, on Scenario-2 PlaFRIM.  Offset 0 collides
// every burst; a large enough offset dodges them entirely.  This is the
// interference question of Section IV-D asked for bursty applications (the
// authors' periodic-application scheduling line of work, ref. [14]).
#include <cstdio>
#include <cstdlib>

#include "apps/checkpoint.hpp"
#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "stats/summary.hpp"
#include "topology/plafrim.hpp"
#include "util/table.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main(int argc, char** argv) {
  const util::Seconds offset = argc > 1 ? std::atof(argv[1]) : 0.0;
  const std::size_t repetitions =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;

  std::vector<double> burstsA;
  std::vector<double> makespansA;
  std::vector<double> burstsSolo;

  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    apps::CheckpointSpec specA;
    specA.job = ior::IorJob::onFirstNodes(8, 8);
    specA.checkpointBytes = 16_GiB;
    specA.computePhase = 30.0;
    specA.iterations = 4;

    // Solo baseline.
    {
      sim::FluidSimulator fluid;
      beegfs::Deployment deployment(fluid, topo::makePlafrim(topo::Scenario::kOmniPath100G, 8),
                                    beegfs::BeegfsParams{}, util::Rng(500 + rep));
      beegfs::FileSystem fs(deployment, util::Rng(600 + rep));
      const auto solo = apps::runCheckpointApp(fs, specA);
      for (const auto d : solo.checkpointDurations) burstsSolo.push_back(d);
    }

    // Pair with the requested offset.
    sim::FluidSimulator fluid;
    beegfs::Deployment deployment(fluid, topo::makePlafrim(topo::Scenario::kOmniPath100G, 16),
                                  beegfs::BeegfsParams{}, util::Rng(500 + rep));
    beegfs::FileSystem fs(deployment, util::Rng(600 + rep));
    auto specB = specA;
    specB.job.nodeIds.clear();
    for (std::size_t n = 8; n < 16; ++n) specB.job.nodeIds.push_back(n);
    specB.filePrefix = "/beegfs/ckptB";

    apps::CheckpointResult resultA;
    bool doneA = false;
    bool doneB = false;
    apps::launchCheckpointApp(fs, specA, 0.0, [&](const apps::CheckpointResult& r) {
      resultA = r;
      doneA = true;
    });
    apps::launchCheckpointApp(fs, specB, offset,
                              [&](const apps::CheckpointResult&) { doneB = true; });
    fluid.run();
    if (!doneA || !doneB) {
      std::fprintf(stderr, "pair did not complete\n");
      return 1;
    }
    for (const auto d : resultA.checkpointDurations) burstsA.push_back(d);
    makespansA.push_back(resultA.makespan);
  }

  const auto solo = stats::summarize(burstsSolo);
  const auto paired = stats::summarize(burstsA);
  util::TableWriter table({"metric", "solo", "with competitor"});
  table.addRow({"mean checkpoint (s)", util::fmt(solo.mean, 2), util::fmt(paired.mean, 2)});
  table.addRow({"worst checkpoint (s)", util::fmt(solo.max, 2), util::fmt(paired.max, 2)});
  table.addRow({"app A makespan (s)", "-", util::fmt(stats::summarize(makespansA).mean, 1)});
  std::printf("offset between the applications: %.1f s, %zu repetitions\n\n", offset,
              repetitions);
  std::printf("%s\n", table.render().c_str());
  std::printf("checkpoint slowdown vs solo: %.2fx\n", paired.mean / solo.mean);
  std::printf("\nTry offsets 0 (collide) vs 10 (dodge): bursts take ~1.7x longer when\n"
              "synchronized, yet the makespan barely moves -- the compute phases\n"
              "dominate.  (Lesson #7: it is shared *bandwidth*, not shared targets.)\n");
  return 0;
}
