// Custom cluster explorer: apply the paper's methodology to *your* system
// (goal (ii) of the paper: "a more general and systematic methodology for
// conducting such evaluations on other systems").
//
//   $ ./custom_cluster [hosts] [targets-per-host] [serverLinkMiBps] [nodes]
//
// Builds a uniform cluster from the command line, sweeps the stripe counts
// and pinned allocation classes, and prints where that system's bottleneck
// sits: a Scenario-1-like system shows the balance effect, a
// Scenario-2-like one the count effect.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/allocation.hpp"
#include "core/analytic.hpp"
#include "harness/run.hpp"
#include "stats/summary.hpp"
#include "topology/cluster.hpp"
#include "util/table.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main(int argc, char** argv) {
  topo::UniformClusterSpec spec;
  spec.name = "custom";
  spec.storageHosts = argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;
  spec.targetsPerHost = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  spec.serverNic = argc > 3 ? std::atof(argv[3]) : 2000.0;
  const std::size_t nodes = argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 16;
  spec.computeNodes = nodes;
  spec.nodeNic = spec.serverNic;
  spec.nodeClientCap = 1600.0;
  spec.serverServiceCap = 4500.0;
  spec.targetVariability =
      topo::VariabilitySpec{topo::VariabilitySpec::Kind::kLogNormal, 0.05, 0, 0, 1.0};

  const auto cluster = topo::buildUniformCluster(spec);
  const storage::HddRaidModel ostModel(spec.targetDevice);
  std::printf("custom cluster: %zu hosts x %zu OSTs, server links %.0f MiB/s, "
              "%zu compute nodes\n",
              spec.storageHosts, spec.targetsPerHost, spec.serverNic, nodes);
  std::printf("per-OST streaming peak: %s; per-host analytic storage peak: %s\n\n",
              util::formatBandwidth(ostModel.peakRate()).c_str(),
              util::formatBandwidth(ostModel.peakRate() *
                                    static_cast<double>(spec.targetsPerHost))
                  .c_str());

  // Sweep the stripe counts with the balanced chooser, a few reps each.
  util::TableWriter table({"stripe count", "mean MiB/s", "sd", "network bound (Fig. 3)"});
  const std::size_t total = cluster.targetCount();
  for (std::size_t count = 1; count <= total; count = count < 4 ? count + 1 : count * 2) {
    std::vector<double> bw;
    for (int rep = 0; rep < 15; ++rep) {
      harness::RunConfig config;
      config.cluster = cluster;
      config.fs.defaultStripe.stripeCount = static_cast<unsigned>(count);
      config.fs.chooser = beegfs::ChooserKind::kBalanced;
      config.job = ior::IorJob::onFirstNodes(nodes, 8);
      config.ior.blockSize = ior::blockSizeForTotal(
          static_cast<util::Bytes>(config.job.ranks()) * 512_MiB, config.job.ranks());
      bw.push_back(harness::runOnce(config, 31000 + count * 100 + rep).ior.bandwidth);
    }
    const auto s = stats::summarize(bw);
    const auto usedHosts = std::min(count, spec.storageHosts);
    table.addRow({std::to_string(count), util::fmt(s.mean, 1), util::fmt(s.sd, 1),
                  util::formatBandwidth(core::networkBound(nodes, usedHosts, spec.serverNic))});
  }
  std::printf("%s\n", table.render().c_str());

  // Balance exploration at a fixed count: best vs worst allocation.
  const std::size_t count = std::min<std::size_t>(spec.storageHosts, total);
  std::vector<std::size_t> balancedPick;
  std::vector<std::size_t> skewedPick;
  for (std::size_t h = 0; h < count; ++h) balancedPick.push_back(cluster.flatTargetIndex(h, 0));
  for (std::size_t t = 0; t < count && t < spec.targetsPerHost; ++t) {
    skewedPick.push_back(cluster.flatTargetIndex(0, t));
  }
  auto measure = [&](std::vector<std::size_t> targets) {
    harness::RunConfig config;
    config.cluster = cluster;
    config.pinnedTargets = std::move(targets);
    config.fs.defaultStripe.stripeCount = static_cast<unsigned>(count);
    config.job = ior::IorJob::onFirstNodes(nodes, 8);
    config.ior.blockSize = ior::blockSizeForTotal(
        static_cast<util::Bytes>(config.job.ranks()) * 512_MiB, config.job.ranks());
    std::vector<double> bw;
    for (int rep = 0; rep < 15; ++rep) {
      bw.push_back(harness::runOnce(config, 32000 + rep).ior.bandwidth);
    }
    return stats::summarize(bw).mean;
  };
  const double spread = measure(balancedPick);
  const double packed = skewedPick.size() == count ? measure(skewedPick) : 0.0;
  std::printf("allocation exploration at stripe count %zu:\n", count);
  std::printf("  one target per host %s: %s\n",
              core::Allocation(balancedPick, cluster).key().c_str(),
              util::formatBandwidth(spread).c_str());
  if (packed > 0.0) {
    std::printf("  all on one host     %s: %s  (%+.1f%% vs spread)\n",
                core::Allocation(skewedPick, cluster).key().c_str(),
                util::formatBandwidth(packed).c_str(), 100.0 * (packed - spread) / spread);
    std::printf("\n%s\n", packed < 0.95 * spread
                              ? "=> Scenario-1-like: balance your allocations (Lesson #4)."
                              : "=> storage-bound: the target count is what matters "
                                "(Lesson #6).");
  }
  return 0;
}
