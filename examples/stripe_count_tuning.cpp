// Stripe-count tuning: the PlaFRIM administrators' question, answered with
// the library ("what should be the default stripe count in any BeeGFS
// system?", Section I).
//
//   $ ./stripe_count_tuning [scenario] [nodes] [repetitions]
//       scenario     1 = 10 GbE (default), 2 = Omni-Path
//       nodes        compute nodes for the evaluation (default 8)
//       repetitions  per stripe count (default 30)
//
// Sweeps every possible stripe count under the paper's randomized-block
// protocol, classifies every run by its (min,max) allocation, and lets the
// StripeCountAdvisor pick the system default -- reproducing the paper's
// recommendation (use the maximum) together with its rationale.
#include <cstdio>
#include <cstdlib>

#include "core/advisor.hpp"
#include "harness/campaign.hpp"
#include "ior/options.hpp"
#include "stats/summary.hpp"
#include "topology/plafrim.hpp"
#include "util/table.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main(int argc, char** argv) {
  const auto scenario = (argc > 1 && std::atoi(argv[1]) == 2)
                            ? topo::Scenario::kOmniPath100G
                            : topo::Scenario::kEthernet10G;
  const std::size_t nodes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const std::size_t repetitions =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 30;

  std::printf("Evaluating %s with %zu compute nodes, %zu repetitions per count...\n\n",
              topo::scenarioLabel(scenario), nodes, repetitions);

  const auto cluster = topo::makePlafrim(scenario, nodes);
  std::vector<harness::CampaignEntry> entries;
  for (unsigned count = 1; count <= cluster.targetCount(); ++count) {
    harness::CampaignEntry entry;
    entry.config.cluster = cluster;
    entry.config.fs.defaultStripe.stripeCount = count;
    entry.config.job = ior::IorJob::onFirstNodes(nodes, 8);
    entry.config.ior.blockSize =
        ior::blockSizeForTotal(32_GiB, entry.config.job.ranks());
    entry.factors["count"] = std::to_string(count);
    entries.push_back(std::move(entry));
  }

  harness::ProtocolOptions protocol;
  protocol.repetitions = repetitions;

  core::StripeCountAdvisor advisor;
  const auto store = harness::executeCampaign(
      entries, protocol, 2022, [&](const harness::RunRecord& record, harness::ResultRow& row) {
        const core::Allocation alloc(record.ior.targetsUsed, cluster);
        advisor.add(static_cast<unsigned>(record.ior.targetsUsed.size()), alloc,
                    record.ior.bandwidth);
        row.factors["alloc"] = alloc.key();
      });

  const auto recommendation = advisor.recommend();

  util::TableWriter table({"count", "mean MiB/s", "worst alloc", "best alloc",
                           "allocation-sensitive?", "score"});
  for (const auto& a : recommendation.assessments) {
    table.addRow({std::to_string(a.stripeCount), util::fmt(a.meanBandwidth, 1),
                  util::fmt(a.worstAllocationMean, 1), util::fmt(a.bestAllocationMean, 1),
                  a.allocationSensitive ? "yes" : "no", util::fmt(a.score, 1)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("=> %s\n", recommendation.rationale.c_str());
  std::printf("\n(The paper's conclusion: use the maximum stripe count; lower counts are\n"
              " hostage to where the round-robin pointer happens to place them.)\n");
  return 0;
}
