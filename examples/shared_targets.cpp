// Shared targets: do two applications hurt each other by writing to the
// same OSTs?  (Section IV-D / Fig. 13's question, as a library use case.)
//
//   $ ./shared_targets [repetitions]
//
// Runs two 8-node applications concurrently on Scenario-2 PlaFRIM, once
// pinned to identical 4-target allocations and once to disjoint ones,
// `repetitions` times each; then applies the paper's statistical method
// (KS normality check + Welch unequal-variance t-test).
#include <cstdio>
#include <cstdlib>

#include "core/sharing.hpp"
#include "harness/concurrent.hpp"
#include "stats/summary.hpp"
#include "topology/plafrim.hpp"
#include "util/table.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main(int argc, char** argv) {
  const std::size_t repetitions =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 40;

  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 16);
  base.fs.defaultStripe.stripeCount = 4;

  core::SharingImpactAnalyzer analyzer;
  std::vector<double> aggregatesShared;
  std::vector<double> aggregatesDisjoint;

  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    for (const bool shared : {true, false}) {
      std::vector<harness::AppSpec> apps(2);
      for (int a = 0; a < 2; ++a) {
        auto& app = apps[static_cast<std::size_t>(a)];
        app.job.ppn = 8;
        for (std::size_t n = 0; n < 8; ++n) {
          app.job.nodeIds.push_back(static_cast<std::size_t>(a) * 8 + n);
        }
        app.ior.blockSize = ior::blockSizeForTotal(32_GiB, app.job.ranks());
        // The two (1,3) windows PlaFRIM's round-robin produces.
        app.pinnedTargets = (shared || a == 0) ? std::vector<std::size_t>{0, 4, 5, 6}
                                               : std::vector<std::size_t>{7, 1, 2, 3};
      }
      const auto result =
          harness::runConcurrent(base, apps, 777 + rep * 2 + (shared ? 1 : 0));
      for (const auto& app : result.apps) {
        if (shared) {
          analyzer.addShared(app.bandwidth);
        } else {
          analyzer.addDisjoint(app.bandwidth);
        }
      }
      (shared ? aggregatesShared : aggregatesDisjoint)
          .push_back(result.aggregateBandwidth);
    }
  }

  const auto verdict = analyzer.analyze();
  util::TableWriter table({"case", "per-app mean MiB/s", "aggregate mean MiB/s (Eq. 1)"});
  table.addRow({"all 4 OSTs shared", util::fmt(verdict.welch.meanA, 1),
                util::fmt(stats::summarize(aggregatesShared).mean, 1)});
  table.addRow({"disjoint OSTs", util::fmt(verdict.welch.meanB, 1),
                util::fmt(stats::summarize(aggregatesDisjoint).mean, 1)});
  std::printf("%s\n", table.render().c_str());
  std::printf("KS normality (shared):   %s\n", verdict.normalityShared.describe().c_str());
  std::printf("KS normality (disjoint): %s\n", verdict.normalityDisjoint.describe().c_str());
  std::printf("Welch t-test:            %s\n", verdict.welch.describe().c_str());
  std::printf("\n%s\n", verdict.summary.c_str());
  std::printf("\n(The paper reached the same verdict on PlaFRIM with p = 0.9031: target\n"
              " sharing is not where concurrent applications lose bandwidth.)\n");
  return 0;
}
