// Extension: read performance (the paper's other future-work direction).
//
// Section III-B: "extending our conclusions to read performance will be the
// subject of future work ... we expect the observed behaviors to be the
// same."  This bench repeats the Fig. 6 stripe-count sweep with the read
// phase and checks that expectation inside the model: the Scenario-1
// balance effect and the Scenario-2 count effect both carry over.
#include <map>

#include "bench/common.hpp"
#include "stats/bimodal.hpp"
#include "stats/summary.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  core::CheckList checks("Extension -- read performance mirrors write");

  for (const auto scenario : {topo::Scenario::kEthernet10G, topo::Scenario::kOmniPath100G}) {
    const bool s1 = scenario == topo::Scenario::kEthernet10G;
    const std::size_t nodes = s1 ? 8 : 32;

    std::vector<harness::CampaignEntry> entries;
    for (unsigned count = 1; count <= 8; ++count) {
      for (const auto op : {ior::Operation::kWrite, ior::Operation::kRead}) {
        harness::CampaignEntry entry;
        entry.config = bench::plafrimRun(scenario, nodes, 8, count);
        entry.config.ior.operation = op;
        entry.factors["count"] = std::to_string(count);
        entry.factors["op"] = op == ior::Operation::kWrite ? "write" : "read";
        entries.push_back(std::move(entry));
      }
    }
    const auto store =
        harness::executeCampaign(entries, bench::protocolOptions(), s1 ? 181 : 182, nullptr,
                                 bench::executorOptions("ext_read_stripecount"));

    util::TableWriter table({"count", "write MiB/s", "read MiB/s", "read/write"});
    std::map<unsigned, double> writeMean;
    std::map<unsigned, double> readMean;
    for (unsigned count = 1; count <= 8; ++count) {
      writeMean[count] = stats::summarize(store.metric(
          "bandwidth_mibps", {{"count", std::to_string(count)}, {"op", "write"}})).mean;
      readMean[count] = stats::summarize(store.metric(
          "bandwidth_mibps", {{"count", std::to_string(count)}, {"op", "read"}})).mean;
      table.addRow({std::to_string(count), util::fmt(writeMean[count], 1),
                    util::fmt(readMean[count], 1),
                    util::fmt(readMean[count] / writeMean[count], 3)});
    }
    bench::printFigure(std::string("Extension: read vs write stripe-count sweep, ") +
                           topo::scenarioLabel(scenario),
                       table);
    store.writeCsv(bench::resultsPath(std::string("ext_read_") + (s1 ? "s1" : "s2") +
                                      ".csv"));

    const std::string tag = s1 ? " [S1]" : " [S2]";
    for (const unsigned count : {1u, 4u, 8u}) {
      checks.expectNear("read ~= write at count " + std::to_string(count) + tag,
                        readMean[count], writeMean[count], 0.05);
    }
    if (s1) {
      // The S1 balance shape carries over: RR count 4 stuck, count 8 at peak.
      checks.expectGreater("read: count 8 beats count 4 by >40%" + tag, readMean[8],
                           1.4 * readMean[4]);
    } else {
      checks.expectGreater("read: count effect present" + tag, readMean[8],
                           3.0 * readMean[1]);
    }
  }
  return bench::finish(checks);
}
