// Figure 3: analytic network bound -- N compute nodes against M storage
// servers with equal link capacity B are limited by B*min(N, M).
//
// The bench prints the closed-form curve for PlaFRIM's M=2 and validates it
// against the fluid simulator with the storage side made infinitely fast
// (so only the network matters).
#include "bench/common.hpp"
#include "core/analytic.hpp"
#include "harness/run.hpp"

using namespace beesim;
using namespace beesim::util::literals;

namespace {

/// Fluid-measured network-only bound: PlaFRIM-S1 wiring, but with storage
/// devices and client stacks fast enough to never bind.
double fluidNetworkBound(std::size_t nodes) {
  const auto total = static_cast<util::Bytes>(nodes) * 8 * 256_MiB;  // divisible by ranks
  auto config = bench::plafrimRun(topo::Scenario::kEthernet10G, nodes, 8, 8, total);
  for (auto& node : config.cluster.nodes) {
    node.clientThroughputCap = 1e6;
    node.nicBandwidth = config.cluster.hosts[0].nicBandwidth;  // same link capacity B
  }
  config.cluster.network.serverLinkNoiseSigmaLog = 0.0;
  for (auto& host : config.cluster.hosts) {
    host.serviceCap = 0.0;  // no OSS cap
    for (auto& target : host.targets) {
      target.device.perDiskStream = 1e5;
      target.device.cacheFraction = 1.0;  // no ramp:
      target.device.cacheQHalf = 0.0;     // full rate at any queue depth
      target.variability = topo::VariabilitySpec{};
    }
  }
  config.fs.client.rampTau = 0.0;  // no client ramp-up
  config.fs.meta = beegfs::MetaParams{0.0, 0.0, 0.0, 0.0};
  config.noise = harness::NoiseSpec{0.0, 0.0};
  config.pinnedTargets = std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7};
  return harness::runOnce(config, 1).ior.bandwidth;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const double linkB = topo::PlafrimCalibration{}.s1ServerLink;
  constexpr std::size_t kServers = 2;

  util::TableWriter table({"N nodes", "analytic B*min(N,M)", "fluid model", "diff %"});
  core::CheckList checks("Fig. 3 -- network bound model");

  for (const std::size_t nodes : {1u, 2u, 3u, 4u, 8u}) {
    const double analytic = core::networkBound(nodes, kServers, linkB);
    const double fluid = fluidNetworkBound(nodes);
    table.addRow({std::to_string(nodes), util::fmt(analytic, 1), util::fmt(fluid, 1),
                  util::fmt(100.0 * (fluid - analytic) / analytic, 2)});
    checks.expectNear("fluid matches analytic at N=" + std::to_string(nodes), fluid,
                      analytic, 0.02);
  }
  bench::printFigure("Fig. 3: network bound, M=2 servers, B=" + util::formatBandwidth(linkB),
                     table);

  checks.expect("bound is flat for N >= M",
                core::networkBound(2, kServers, linkB) == core::networkBound(8, kServers, linkB),
                "B*min(N,M) saturates at N=M");
  return bench::finish(checks);
}
