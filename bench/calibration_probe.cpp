// Calibration probe: prints the simulator's value at every anchor point the
// PlaFRIM calibration was fitted against (see topology/plafrim.hpp and
// EXPERIMENTS.md).  Not a paper figure; a tool for keeping the calibration
// honest when the model evolves.
#include <cstdio>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "core/allocation.hpp"
#include "ior/runner.hpp"
#include "sim/fluid.hpp"
#include "topology/plafrim.hpp"
#include "util/table.hpp"

using namespace beesim;
using namespace beesim::util::literals;

namespace {

/// One noise-free run: `nodes` x `ppn`, stripe `count` (or pinned targets),
/// 32 GiB total.
ior::IorResult probe(topo::Scenario scenario, std::size_t nodes, int ppn, unsigned count,
                     std::optional<std::vector<std::size_t>> pinned = std::nullopt,
                     util::Bytes total = 32_GiB) {
  auto cluster = topo::makePlafrim(scenario, nodes);
  // Noise-free probe: strip device/link variability so anchors are
  // deterministic.
  cluster.network.serverLinkNoiseSigmaLog = 0.0;
  for (auto& host : cluster.hosts) {
    for (auto& target : host.targets) {
      target.variability = topo::VariabilitySpec{};
    }
  }
  beegfs::BeegfsParams params;
  params.defaultStripe.stripeCount = count;
  params.chooser = beegfs::ChooserKind::kRoundRobin;

  sim::FluidSimulator fluid;
  beegfs::Deployment deployment(fluid, cluster, params, util::Rng(42));
  beegfs::FileSystem fs(deployment, util::Rng(43));

  auto job = ior::IorJob::onFirstNodes(nodes, ppn);
  ior::IorOptions options;
  options.blockSize = ior::blockSizeForTotal(total, job.ranks());
  return ior::runIor(fs, job, options, std::move(pinned));
}

}  // namespace

int main() {
  util::TableWriter table(
      {"anchor", "scenario", "nodes", "ppn", "count/alloc", "paper MiB/s", "model MiB/s"});

  using topo::Scenario;
  auto row = [&](const char* name, Scenario s, std::size_t nodes, int ppn, const char* cfg,
                 const char* paper, double model) {
    table.addRow({name, s == Scenario::kEthernet10G ? "1" : "2", std::to_string(nodes),
                  std::to_string(ppn), cfg, paper, util::fmt(model, 0)});
  };

  // -- Scenario 1 anchors. -------------------------------------------------
  row("S1 single node", Scenario::kEthernet10G, 1, 8, "4 (RR)", "~880",
      probe(Scenario::kEthernet10G, 1, 8, 4).bandwidth);
  row("S1 plateau (Fig4a)", Scenario::kEthernet10G, 4, 8, "4 (RR=(1,3))", "~1460",
      probe(Scenario::kEthernet10G, 4, 8, 4).bandwidth);
  row("S1 8 nodes (Fig6a)", Scenario::kEthernet10G, 8, 8, "4 (RR=(1,3))", "~1460",
      probe(Scenario::kEthernet10G, 8, 8, 4).bandwidth);
  row("S1 (0,1)", Scenario::kEthernet10G, 8, 8, "(0,1)", "~1100",
      probe(Scenario::kEthernet10G, 8, 8, 1, std::vector<std::size_t>{4}).bandwidth);
  row("S1 (0,2)", Scenario::kEthernet10G, 8, 8, "(0,2)", "~1100",
      probe(Scenario::kEthernet10G, 8, 8, 2, std::vector<std::size_t>{4, 5}).bandwidth);
  row("S1 (1,1)", Scenario::kEthernet10G, 8, 8, "(1,1)", "~2200",
      probe(Scenario::kEthernet10G, 8, 8, 2, std::vector<std::size_t>{0, 4}).bandwidth);
  row("S1 (1,2)", Scenario::kEthernet10G, 8, 8, "(1,2)", "~1650",
      probe(Scenario::kEthernet10G, 8, 8, 3, std::vector<std::size_t>{0, 4, 5}).bandwidth);
  row("S1 (2,3)", Scenario::kEthernet10G, 8, 8, "(2,3)", "~1830",
      probe(Scenario::kEthernet10G, 8, 8, 5, std::vector<std::size_t>{0, 1, 4, 5, 6}).bandwidth);
  row("S1 (3,3)", Scenario::kEthernet10G, 8, 8, "(3,3)", "~2200",
      probe(Scenario::kEthernet10G, 8, 8, 6, std::vector<std::size_t>{0, 1, 2, 4, 5, 6})
          .bandwidth);
  row("S1 (4,4)", Scenario::kEthernet10G, 8, 8, "(4,4)", "~2200",
      probe(Scenario::kEthernet10G, 8, 8, 8,
            std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7})
          .bandwidth);

  // -- Scenario 2 anchors. -------------------------------------------------
  row("S2 single node (Fig4b)", Scenario::kOmniPath100G, 1, 8, "4 (RR)", "~1631",
      probe(Scenario::kOmniPath100G, 1, 8, 4).bandwidth);
  row("S2 16 nodes (Fig4b)", Scenario::kOmniPath100G, 16, 8, "4 (RR=(1,3))", "~6100",
      probe(Scenario::kOmniPath100G, 16, 8, 4).bandwidth);
  row("S2 32n count1 (Fig6b)", Scenario::kOmniPath100G, 32, 8, "(0,1)", "~1764",
      probe(Scenario::kOmniPath100G, 32, 8, 1, std::vector<std::size_t>{4}).bandwidth);
  row("S2 32n count2 (1,1)", Scenario::kOmniPath100G, 32, 8, "(1,1)", "(interp ~2660)",
      probe(Scenario::kOmniPath100G, 32, 8, 2, std::vector<std::size_t>{0, 4}).bandwidth);
  row("S2 32n count4 (1,3)", Scenario::kOmniPath100G, 32, 8, "(1,3)", "~6100",
      probe(Scenario::kOmniPath100G, 32, 8, 4, std::vector<std::size_t>{0, 4, 5, 6}).bandwidth);
  row("S2 32n count6 (3,3)", Scenario::kOmniPath100G, 32, 8, "(3,3)", "(interp ~6900)",
      probe(Scenario::kOmniPath100G, 32, 8, 6, std::vector<std::size_t>{0, 1, 2, 4, 5, 6})
          .bandwidth);
  row("S2 32n count6 (2,4)", Scenario::kOmniPath100G, 32, 8, "(2,4)", "~10% below (3,3)",
      probe(Scenario::kOmniPath100G, 32, 8, 6, std::vector<std::size_t>{0, 1, 4, 5, 6, 7})
          .bandwidth);
  row("S2 32n count8 (Fig6b)", Scenario::kOmniPath100G, 32, 8, "(4,4)", "~8064",
      probe(Scenario::kOmniPath100G, 32, 8, 8,
            std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7})
          .bandwidth);

  // -- ppn anchors (Fig. 5). ------------------------------------------------
  row("S1 8n x16ppn", Scenario::kEthernet10G, 8, 16, "4 (RR)", "~= 8ppn",
      probe(Scenario::kEthernet10G, 8, 16, 4).bandwidth);
  row("S2 16n x16ppn", Scenario::kOmniPath100G, 16, 16, "4 (RR)", "slightly < 8ppn",
      probe(Scenario::kOmniPath100G, 16, 16, 4).bandwidth);

  std::printf("%s\n", table.render().c_str());
  return 0;
}
