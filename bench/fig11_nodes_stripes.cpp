// Figure 11: Scenario-2 mean bandwidth vs compute nodes for several stripe
// counts.
//
// Paper finding (Lesson #6): more OSTs unlock a higher peak, but that peak
// needs more compute nodes -- stripe 1 saturates with few nodes, stripe 8
// keeps climbing to 32.
#include <map>

#include "bench/common.hpp"
#include "stats/plot.hpp"
#include "stats/summary.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const std::vector<std::size_t> nodeCounts{1, 2, 4, 8, 16, 32};
  const std::vector<unsigned> stripeCounts{1, 2, 4, 8};

  std::vector<harness::CampaignEntry> entries;
  for (const auto nodes : nodeCounts) {
    for (const auto count : stripeCounts) {
      harness::CampaignEntry entry;
      entry.config = bench::plafrimRun(topo::Scenario::kOmniPath100G, nodes, 8, count);
      entry.factors["nodes"] = std::to_string(nodes);
      entry.factors["count"] = std::to_string(count);
      entries.push_back(std::move(entry));
    }
  }
  const auto store = harness::executeCampaign(entries, bench::protocolOptions(), 111, nullptr,
                                              bench::executorOptions("fig11"));

  std::map<unsigned, std::map<std::size_t, double>> mean;
  util::TableWriter table({"nodes", "stripe 1", "stripe 2", "stripe 4", "stripe 8"});
  for (const auto nodes : nodeCounts) {
    std::vector<std::string> row{std::to_string(nodes)};
    for (const auto count : stripeCounts) {
      const auto values = store.metric("bandwidth_mibps",
                                       {{"nodes", std::to_string(nodes)},
                                        {"count", std::to_string(count)}});
      mean[count][nodes] = stats::summarize(values).mean;
      row.push_back(util::fmt(mean[count][nodes], 1));
    }
    table.addRow(std::move(row));
  }
  bench::printFigure(
      "Fig. 11: Scenario 2 mean bandwidth vs nodes, per stripe count (MiB/s)", table);
  {
    std::vector<stats::Series> series;
    for (const auto count : stripeCounts) {
      stats::Series s;
      s.name = "stripe " + std::to_string(count);
      for (const auto nodes : nodeCounts) {
        s.x.push_back(static_cast<double>(nodes));
        s.y.push_back(mean[count][nodes]);
      }
      series.push_back(std::move(s));
    }
    stats::PlotOptions plot;
    plot.xLabel = "compute nodes";
    plot.yLabel = "MiB/s";
    std::printf("%s\n", stats::renderLines(series, plot).c_str());
  }
  store.writeCsv(bench::resultsPath("fig11.csv"));

  core::CheckList checks("Fig. 11 -- node requirement grows with stripe count");
  // Higher counts unlock higher peaks (at 32 nodes).
  checks.expectGreater("peak(stripe 2) > peak(stripe 1)", mean[2][32], mean[1][32]);
  checks.expectGreater("peak(stripe 4) > peak(stripe 2)", mean[4][32], mean[2][32]);
  checks.expectGreater("peak(stripe 8) > peak(stripe 4)", mean[8][32], mean[4][32]);
  // Saturation point moves right with the count: relative growth in the last
  // node-doubling (16 -> 32) increases with the stripe count.
  const double grow1 = mean[1][32] / mean[1][16];
  const double grow4 = mean[4][32] / mean[4][16];
  const double grow8 = mean[8][32] / mean[8][16];
  checks.expectNear("stripe 1 is saturated by 16 nodes", grow1, 1.0, 0.06);
  checks.expectGreater("stripe 4 still grows 16 -> 32 more than stripe 1", grow4,
                       grow1 + 0.05);
  checks.expectGreater("stripe 8 grows 16 -> 32 more than stripe 4", grow8, grow4);
  // At one node the wide counts collapse onto the client-stack ceiling.
  checks.expectNear("1 node: stripe 8 ~= stripe 4 (client-bound)", mean[8][1], mean[4][1],
                    0.25);
  checks.expectGreater("1 node: far below the 32-node peak", mean[8][32], 3.0 * mean[8][1]);
  return bench::finish(checks);
}
