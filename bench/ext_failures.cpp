// Extension: mid-run storage-server failure vs. OST allocation.
//
// The paper studies allocations on a healthy system; this bench asks how the
// allocation classes rank when one OSS crashes mid-run and the clients fall
// back to degraded-stripe failover (timeout -> retry -> re-route to a
// surviving target, re-sending the interrupted chunks).  Sweep: four
// placement classes x {healthy, early crash, late crash} of storage host 1,
// in both scenarios.
//
// Expected shape: placements confined to the surviving host don't notice;
// placements using the failed host pay a detection+rewrite penalty but
// complete; a balanced allocation degrades gracefully -- it stays at or
// above the paper's single-server floor, which is what a whole run on one
// healthy server achieves.
#include <map>

#include "bench/common.hpp"
#include "faults/schedule.hpp"
#include "stats/summary.hpp"

using namespace beesim;

namespace {

double meanOf(const std::vector<double>& values) {
  return values.empty() ? 0.0 : stats::summarize(values).mean;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  // Two single-server placements (one per host) so the same (0,4) class is
  // observed both surviving and dying; (2,2) and (4,4) span both hosts.
  const std::map<std::string, std::vector<std::size_t>> placements{
      {"(0,4)live", {0, 1, 2, 3}},   // single server, the host that survives
      {"(0,4)dead", {4, 5, 6, 7}},   // single server, the host that crashes
      {"(2,2)", {0, 1, 4, 5}},
      {"(4,4)", {0, 1, 2, 3, 4, 5, 6, 7}},
  };
  struct ScenarioSpec {
    topo::Scenario scenario;
    const char* label;
    double early;  // crash time well inside every placement's run
    double late;   // crash time still inside the fastest placement's run
  };
  const std::vector<ScenarioSpec> scenarios{
      {topo::Scenario::kEthernet10G, "1", 5.0, 11.0},
      {topo::Scenario::kOmniPath100G, "2", 4.0, 7.0},
  };
  // Segmented writes (IOR -s): each rank moves its 512 MiB as 32 sequential
  // segments, so a crash can only claw back the in-flight segment -- with one
  // giant segment the whole file is in flight and any failure rewrites all of
  // it, drowning the allocation effect this bench is after.
  constexpr int kSegments = 32;

  std::vector<harness::CampaignEntry> entries;
  for (const auto& spec : scenarios) {
    for (const auto& [key, targets] : placements) {
      for (const std::string fault : {"none", "early", "late"}) {
        harness::CampaignEntry entry;
        entry.config = bench::plafrimRun(spec.scenario, 8, 8,
                                         static_cast<unsigned>(targets.size()));
        entry.config.ior.blockSize /= kSegments;
        entry.config.ior.segments = kSegments;
        entry.config.pinnedTargets = targets;
        if (fault != "none") {
          const double at = fault == "early" ? spec.early : spec.late;
          entry.config.faults.schedule =
              faults::parseSchedule("off:h1@" + util::fmt(at, 1));
          // Tuned client: 0.5 s comm timeout, one same-target retry, then
          // degraded-stripe failover (the default 5 s / 3 retries models an
          // untuned client and would stall runs for tens of seconds).
          entry.config.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
          entry.config.fs.faults.ioTimeout = 0.5;
          entry.config.fs.faults.backoffBase = 0.25;
          entry.config.fs.faults.maxRetries = 1;
        }
        entry.factors["scenario"] = spec.label;
        entry.factors["alloc"] = key;
        entry.factors["fault"] = fault;
        entries.push_back(std::move(entry));
      }
    }
  }
  const auto store = harness::executeCampaign(entries, bench::protocolOptions(), 211,
                                              nullptr, bench::executorOptions("ext_failures"));

  // mean bandwidth / failovers / rewritten MiB per (scenario, alloc, fault).
  const auto bw = [&](const std::string& sc, const std::string& alloc,
                      const std::string& fault) {
    return meanOf(store.metric("bandwidth_mibps",
                               {{"scenario", sc}, {"alloc", alloc}, {"fault", fault}}));
  };
  const auto faultMetric = [&](const std::string& name, const std::string& sc,
                               const std::string& alloc, const std::string& fault) {
    return meanOf(
        store.metric(name, {{"scenario", sc}, {"alloc", alloc}, {"fault", fault}}));
  };

  util::TableWriter table({"scenario", "alloc", "fault", "bandwidth", "failovers",
                           "rewritten MiB", "degraded s", "aborted"});
  for (const auto& spec : scenarios) {
    for (const auto& [key, targets] : placements) {
      for (const std::string fault : {"none", "early", "late"}) {
        const bool faulty = fault != "none";
        table.addRow({spec.label, key, fault, util::fmt(bw(spec.label, key, fault), 1),
                      faulty ? util::fmt(faultMetric("fault_failovers", spec.label, key,
                                                     fault), 2)
                             : "-",
                      faulty ? util::fmt(faultMetric("fault_rewritten_mib", spec.label,
                                                     key, fault), 1)
                             : "-",
                      faulty ? util::fmt(faultMetric("fault_degraded_seconds", spec.label,
                                                     key, fault), 2)
                             : "-",
                      faulty ? util::fmt(faultMetric("fault_aborted", spec.label, key,
                                                     fault), 2)
                             : "-"});
      }
    }
  }
  bench::printFigure("Ext: OSS crash mid-run vs allocation (8 nodes x 8 ppn)", table);
  store.writeCsv(bench::resultsPath("ext_failures.csv"));

  core::CheckList checks("Ext -- degraded-stripe failover under an OSS crash");
  for (const auto& spec : scenarios) {
    const std::string sc = spec.label;
    const std::string tag = " [S" + sc + "]";
    // Degraded mode keeps every job alive: a surviving target always exists.
    double aborts = 0.0;
    for (const auto& [key, targets] : placements) {
      for (const std::string fault : {"early", "late"}) {
        aborts += faultMetric("fault_aborted", sc, key, fault);
      }
    }
    checks.expect("no degraded run aborts" + tag, aborts == 0.0, util::fmt(aborts, 0));
    // Failover engages exactly for the placements that use the dead host.
    checks.expect("failovers hit host-1 users" + tag,
                  faultMetric("fault_failovers", sc, "(0,4)dead", "early") > 0.0 &&
                      faultMetric("fault_failovers", sc, "(2,2)", "early") > 0.0 &&
                      faultMetric("fault_failovers", sc, "(4,4)", "early") > 0.0,
                  util::fmt(faultMetric("fault_failovers", sc, "(4,4)", "early"), 2));
    checks.expect("surviving-host placement unaffected" + tag,
                  faultMetric("fault_failovers", sc, "(0,4)live", "early") == 0.0,
                  util::fmt(faultMetric("fault_failovers", sc, "(0,4)live", "early"), 2));
    checks.expectNear("(0,4)live bandwidth ignores the crash" + tag,
                      bw(sc, "(0,4)live", "early"), bw(sc, "(0,4)live", "none"), 0.05);
    // Acceptance: a balanced allocation degrades gracefully -- it loses no
    // more than the single-server floor a healthy (0,4) run lives at.
    checks.expectGreater("degraded (4,4) >= healthy single-server floor" + tag,
                         bw(sc, "(4,4)", "early"), bw(sc, "(0,4)live", "none"));
    checks.expectGreater("degraded (4,4) > degraded (0,4)dead" + tag,
                         bw(sc, "(4,4)", "early"), bw(sc, "(0,4)dead", "early"));
    checks.expectGreater("crash costs bandwidth: healthy (4,4) > degraded" + tag,
                         bw(sc, "(4,4)", "none"), bw(sc, "(4,4)", "early"));
    checks.expectGreater("later crash hurts less" + tag, bw(sc, "(4,4)", "late"),
                         bw(sc, "(4,4)", "early"));
    // The dying single-server placement re-sends every in-flight chunk; the
    // balanced one only those striped onto the dead half.
    checks.expectGreater("rewrites: (0,4)dead > (4,4)" + tag,
                         faultMetric("fault_rewritten_mib", sc, "(0,4)dead", "early"),
                         faultMetric("fault_rewritten_mib", sc, "(4,4)", "early"));
  }
  return bench::finish(checks);
}
