// Figure 6: write bandwidth for every stripe count (1-8), 100 repetitions,
// individual points recorded.
//
// Scenario 1 (8 nodes): bi-modal clouds at counts 2, 3, 5, 6 (allocation
// luck); peak ~2200 MiB/s only at counts 2 (when (1,1)), 6 (when (3,3)) and
// 8; the round-robin count-4 default stays at ~1460.  Scenario 2 (32
// nodes): bandwidth grows with the count (~1764 -> ~8064 MiB/s mean) and so
// does the spread (sd x4.6).
#include <map>

#include "bench/common.hpp"
#include "stats/bimodal.hpp"
#include "stats/plot.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  core::CheckList checks("Fig. 6 -- stripe count");

  std::map<unsigned, std::vector<double>> s1ByCount;
  std::map<unsigned, std::vector<double>> s2ByCount;

  for (const auto scenario : {topo::Scenario::kEthernet10G, topo::Scenario::kOmniPath100G}) {
    const bool s1 = scenario == topo::Scenario::kEthernet10G;
    const std::size_t nodes = s1 ? 8 : 32;  // paper Section IV-C

    std::vector<harness::CampaignEntry> entries;
    for (unsigned count = 1; count <= 8; ++count) {
      harness::CampaignEntry entry;
      entry.config = bench::plafrimRun(scenario, nodes, 8, count);
      entry.factors["count"] = std::to_string(count);
      entries.push_back(std::move(entry));
    }
    const auto cluster = entries.front().config.cluster;
    const auto store = harness::executeCampaign(entries, bench::protocolOptions(),
                                                s1 ? 61 : 62,
                                                bench::allocationAnnotator(cluster),
                                                bench::executorOptions("fig06"));

    util::TableWriter table(
        {"count", "mean MiB/s", "sd", "min", "max", "bimodal?", "allocs seen"});
    for (unsigned count = 1; count <= 8; ++count) {
      const auto bw =
          store.metric("bandwidth_mibps", {{"count", std::to_string(count)}});
      (s1 ? s1ByCount : s2ByCount)[count] = bw;
      const auto summary = stats::summarize(bw);
      const auto split = stats::twoMeansSplit(bw);
      std::string allocs;
      for (const auto& [key, values] :
           store.groupBy("alloc", "bandwidth_mibps", {{"count", std::to_string(count)}})) {
        if (!allocs.empty()) allocs += ' ';
        allocs += key + "x" + std::to_string(values.size());
      }
      table.addRow({std::to_string(count), util::fmt(summary.mean, 1),
                    util::fmt(summary.sd, 1), util::fmt(summary.min, 1),
                    util::fmt(summary.max, 1),
                    stats::isBimodal(split, bw.size()) ? "yes" : "no", allocs});
    }
    bench::printFigure(std::string("Fig. 6") + (s1 ? "a" : "b") + ": " +
                           topo::scenarioLabel(scenario) + ", " + std::to_string(nodes) +
                           " nodes x 8 ppn, round-robin chooser",
                       table);
    {
      std::vector<stats::CategoryScatter> cats;
      for (unsigned count = 1; count <= 8; ++count) {
        cats.push_back(stats::CategoryScatter{
            std::to_string(count), (s1 ? s1ByCount : s2ByCount)[count]});
      }
      stats::PlotOptions plot;
      plot.xLabel = "stripe count (individual executions)";
      plot.yLabel = "MiB/s";
      std::printf("%s\n", stats::renderCategoryScatter(cats, plot).c_str());
    }
    store.writeCsv(bench::resultsPath(std::string("fig06_") + (s1 ? "s1" : "s2") + ".csv"));
  }

  // -- Scenario 1 shape checks. -------------------------------------------
  for (const unsigned count : {2u, 6u}) {
    const auto& bw = s1ByCount[count];
    checks.expect("S1 count " + std::to_string(count) + " is bimodal",
                  stats::isBimodal(stats::twoMeansSplit(bw), bw.size()),
                  stats::twoMeansSplit(bw).describe());
  }
  for (const unsigned count : {1u, 4u, 8u}) {
    const auto& bw = s1ByCount[count];
    checks.expect("S1 count " + std::to_string(count) + " is unimodal",
                  !stats::isBimodal(stats::twoMeansSplit(bw), bw.size()),
                  stats::twoMeansSplit(bw).describe());
  }
  const auto s1c4 = stats::summarize(s1ByCount[4]);
  const auto s1c8 = stats::summarize(s1ByCount[8]);
  checks.expectNear("S1 default count 4 ~1460 MiB/s", s1c4.mean, 1460.0, 0.10);
  checks.expectNear("S1 count 8 reaches peak ~2200 MiB/s", s1c8.mean, 2200.0, 0.10);
  checks.expectGreater("S1: count 8 beats the count-4 default by >40%", s1c8.mean,
                       1.4 * s1c4.mean);
  // Count 2's upper mode reaches the peak too (one of the counts the paper
  // lists as peak-capable).
  checks.expectNear("S1 count 2 upper mode ~ peak",
                    stats::twoMeansSplit(s1ByCount[2]).upperMean, s1c8.mean, 0.10);

  // -- Scenario 2 shape checks. -------------------------------------------
  std::vector<double> xs;
  std::vector<double> means;
  for (unsigned count = 1; count <= 8; ++count) {
    xs.push_back(count);
    means.push_back(stats::summarize(s2ByCount[count]).mean);
  }
  // Near-monotone growth: allow small dips within noise at high counts
  // (counts 6-8 sit close together once the OSS service cap engages).
  for (std::size_t i = 1; i < means.size(); ++i) {
    checks.expectGreater(
        "S2 mean grows " + std::to_string(i) + " -> " + std::to_string(i + 1) + " targets",
        means[i], 0.93 * means[i - 1]);
  }
  checks.expectGreater("S2 count 8 > count 5", means[7], means[4]);
  const auto fit = stats::linearFit(xs, means);
  checks.expect("S2 growth is near-linear in the count (R2 > 0.9)", fit.r2 > 0.9,
                fit.describe());
  checks.expectRatio("S2 count 8 / count 1 ~ 4.6x (paper 8064/1764)", means[7], means[0],
                     4.6, 0.35);
  const auto sd1 = stats::summarize(s2ByCount[1]).sd;
  const auto sd8 = stats::summarize(s2ByCount[8]).sd;
  checks.expectGreater("S2 spread grows with the count (sd8 > 2.5x sd1)", sd8, 2.5 * sd1);
  return bench::finish(checks);
}
