// Figure 13: individual performance of two concurrent applications with 4
// OSTs each, split by whether their (1,3) allocations were identical
// ("shared all four") or disjoint ("all different").
//
// Paper method and verdict: Kolmogorov-Smirnov for approximate normality,
// then Welch's unequal-variance t-test; p = 0.9031, so equal means cannot be
// rejected -- sharing OSTs shows no significant impact (Lesson #7).
//
// We reproduce both the paper's *sampling* (the round-robin chooser with
// the create race decides organically who shares, ~1/3 shared) and the
// statistical analysis.
#include "bench/common.hpp"
#include "core/sharing.hpp"
#include "stats/summary.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const auto reps = bench::repetitions();

  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 16);
  base.fs.defaultStripe.stripeCount = 4;  // PlaFRIM default

  // Repetitions map across workers (each is seed-isolated); the analyzer is
  // fed serially in rep order afterwards, so the verdict ignores --jobs.
  const auto results = harness::parallelMap<harness::ConcurrentResult>(
      reps, bench::jobs(), [&](std::size_t rep) {
        std::vector<harness::AppSpec> apps(2);
        for (int a = 0; a < 2; ++a) {
          apps[static_cast<std::size_t>(a)].job.ppn = 8;
          for (std::size_t n = 0; n < 8; ++n) {
            apps[static_cast<std::size_t>(a)].job.nodeIds.push_back(
                static_cast<std::size_t>(a) * 8 + n);
          }
          apps[static_cast<std::size_t>(a)].ior.blockSize =
              ior::blockSizeForTotal(32_GiB, apps[static_cast<std::size_t>(a)].job.ranks());
        }
        // No pinning: the round-robin chooser (+ create race) decides sharing.
        return harness::runConcurrent(base, apps, 13000 + rep);
      });

  core::SharingImpactAnalyzer analyzer;
  std::size_t sharedRuns = 0;
  for (const auto& result : results) {
    // The paper's two cases: all four targets shared, or none.
    if (result.sharedTargets == 4) {
      ++sharedRuns;
      for (const auto& app : result.apps) analyzer.addShared(app.bandwidth);
    } else if (result.sharedTargets == 0) {
      for (const auto& app : result.apps) analyzer.addDisjoint(app.bandwidth);
    }
  }

  const auto verdict = analyzer.analyze();
  util::TableWriter table({"group", "n (app samples)", "mean MiB/s"});
  table.addRow({"all 4 targets shared", std::to_string(analyzer.sharedCount()),
                util::fmt(verdict.welch.meanA, 1)});
  table.addRow({"all targets different", std::to_string(analyzer.disjointCount()),
                util::fmt(verdict.welch.meanB, 1)});
  bench::printFigure("Fig. 13: two apps x 4 OSTs each, shared vs disjoint", table);
  std::printf("normality (KS, shared):   %s\n", verdict.normalityShared.describe().c_str());
  std::printf("normality (KS, disjoint): %s\n", verdict.normalityDisjoint.describe().c_str());
  std::printf("Welch two-sample t-test:  %s\n", verdict.welch.describe().c_str());
  std::printf("%s\n", verdict.summary.c_str());

  core::CheckList checks("Fig. 13 -- sharing OSTs is harmless");
  const double sharedFraction =
      static_cast<double>(sharedRuns) / static_cast<double>(reps);
  checks.expectNear("~1/3 of repetitions shared all targets (create race)", sharedFraction,
                    1.0 / 3.0, 0.60);
  checks.expect("Welch test cannot reject equal means (paper p=0.9031)",
                verdict.sharingHarmless, "p=" + util::fmt(verdict.welch.pValue, 4));
  checks.expectNear("group means within 5%", verdict.welch.meanA, verdict.welch.meanB,
                    0.05);
  return bench::finish(checks);
}
