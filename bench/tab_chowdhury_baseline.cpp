// Baseline reproduction: why Chowdhury et al. (ICPP'19) concluded that the
// stripe count barely matters.
//
// Their evaluation ran from a *single compute node* on a Catalyst-class
// system (24 OSTs on 12 servers).  The paper's Lesson #1 argues the client
// side was the bottleneck there, hiding the target-count effect.  This
// bench measures stripe counts 1..24 from 1 node (their methodology) and
// from 8 nodes (the paper's), on the Catalyst-like topology.
#include <map>

#include "bench/common.hpp"
#include "stats/summary.hpp"
#include "topology/catalyst.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const std::vector<unsigned> counts{1, 2, 4, 8, 16, 24};
  core::CheckList checks("Chowdhury baseline -- single node hides the stripe count");
  std::map<std::size_t, std::map<unsigned, double>> mean;

  for (const std::size_t nodes : {std::size_t{1}, std::size_t{8}}) {
    std::vector<harness::CampaignEntry> entries;
    for (const auto count : counts) {
      harness::CampaignEntry entry;
      entry.config.cluster = topo::makeCatalystLike(nodes);
      entry.config.fs.defaultStripe.stripeCount = count;
      entry.config.fs.chooser = beegfs::ChooserKind::kBalanced;
      entry.config.job = ior::IorJob::onFirstNodes(nodes, 8);
      entry.config.ior.blockSize =
          ior::blockSizeForTotal(8_GiB, entry.config.job.ranks());
      entry.factors["count"] = std::to_string(count);
      entries.push_back(std::move(entry));
    }
    const auto store = harness::executeCampaign(entries, bench::protocolOptions(),
                                                nodes == 1 ? 141 : 142, nullptr,
                                                bench::executorOptions("tab_chowdhury"));

    util::TableWriter table({"stripe count", "mean MiB/s", "sd", "vs count 1"});
    for (const auto count : counts) {
      const auto s = stats::summarize(
          store.metric("bandwidth_mibps", {{"count", std::to_string(count)}}));
      mean[nodes][count] = s.mean;
      table.addRow({std::to_string(count), util::fmt(s.mean, 1), util::fmt(s.sd, 1),
                    util::fmt(s.mean / mean[nodes][1], 2) + "x"});
    }
    bench::printFigure("Catalyst-like system, " + std::to_string(nodes) +
                           " compute node(s), 8 ppn",
                       table);
    store.writeCsv(bench::resultsPath("tab_chowdhury_" + std::to_string(nodes) + "n.csv"));
  }

  // Their observation: from one node, all counts look the same.
  for (const auto count : counts) {
    checks.expectNear("1 node: count " + std::to_string(count) + " ~= count 1",
                      mean[1][count], mean[1][1], 0.10);
  }
  // The paper's counter: with enough nodes the count effect appears.
  checks.expectGreater("8 nodes: count 8 >> count 1", mean[8][8], 1.5 * mean[8][1]);
  checks.expectGreater("8 nodes: count 24 > count 4", mean[8][24], mean[8][4]);
  return bench::finish(checks);
}
