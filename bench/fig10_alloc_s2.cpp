// Figure 10: Scenario-2 box-plots of bandwidth by (min,max) OST allocation.
//
// Paper findings: the target *count* dominates (unlike Scenario 1), but
// balanced placements still win within a count -- (3,3) averaged 10.15%
// above (2,4).
#include <map>

#include "bench/common.hpp"
#include "core/analyzer.hpp"
#include "stats/plot.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const std::map<std::string, std::vector<std::size_t>> placements{
      {"(0,1)", {4}},
      {"(1,1)", {0, 4}},
      {"(0,2)", {4, 5}},
      {"(1,3)", {0, 4, 5, 6}},
      {"(2,2)", {0, 1, 4, 5}},
      {"(2,4)", {0, 1, 4, 5, 6, 7}},
      {"(3,3)", {0, 1, 2, 4, 5, 6}},
      {"(4,4)", {0, 1, 2, 3, 4, 5, 6, 7}},
  };

  std::vector<harness::CampaignEntry> entries;
  for (const auto& [key, targets] : placements) {
    harness::CampaignEntry entry;
    entry.config = bench::plafrimRun(topo::Scenario::kOmniPath100G, 32, 8,
                                     static_cast<unsigned>(targets.size()));
    entry.config.pinnedTargets = targets;
    entry.factors["alloc"] = key;
    entries.push_back(std::move(entry));
  }
  const auto cluster = entries.front().config.cluster;
  const auto store = harness::executeCampaign(entries, bench::protocolOptions(), 101, nullptr,
                                              bench::executorOptions("fig10"));

  core::AllocationAnalyzer analyzer;
  std::map<std::string, double> means;
  for (const auto& [key, targets] : placements) {
    const auto bw = store.metric("bandwidth_mibps", {{"alloc", key}});
    for (const auto v : bw) analyzer.add(core::Allocation(targets, cluster), v);
  }
  util::TableWriter table({"alloc", "targets", "q1", "median", "q3", "mean", "sd"});
  for (const auto& group : analyzer.groups()) {
    means[group.key] = group.summary.mean;
    std::size_t targetCount = 0;
    for (const auto& [key, targets] : placements) {
      if (key == group.key) targetCount = targets.size();
    }
    table.addRow({group.key, std::to_string(targetCount), util::fmt(group.box.q1, 0),
                  util::fmt(group.box.median, 0), util::fmt(group.box.q3, 0),
                  util::fmt(group.summary.mean, 1), util::fmt(group.summary.sd, 1)});
  }
  bench::printFigure("Fig. 10: Scenario 2 bandwidth by OST allocation (32 nodes x 8 ppn)",
                     table);
  {
    std::vector<stats::LabelledBox> boxRows;
    for (const auto& group : analyzer.groups()) {
      boxRows.push_back(stats::LabelledBox{group.key, group.box});
    }
    stats::PlotOptions plot;
    plot.xLabel = "MiB/s ([=M=] box, |--| whiskers, o outliers)";
    std::printf("%s\n", stats::renderBoxes(boxRows, plot).c_str());
  }
  store.writeCsv(bench::resultsPath("fig10.csv"));

  core::CheckList checks("Fig. 10 -- allocation vs bandwidth, Scenario 2");
  // The count dominates: more targets -> more bandwidth across classes.
  checks.expectGreater("(1,1) > (0,1)", means["(1,1)"], means["(0,1)"]);
  checks.expectGreater("(2,2) > (1,1)", means["(2,2)"], means["(1,1)"]);
  checks.expectGreater("(3,3) > (2,2)", means["(3,3)"], means["(2,2)"]);
  checks.expectGreater("(4,4) > (2,2)", means["(4,4)"], means["(2,2)"]);
  // Balance still helps within a count (paper: +10.15% for (3,3) vs (2,4)).
  checks.expectRatio("(3,3) ~10-20% above (2,4)", means["(3,3)"], means["(2,4)"], 1.15,
                     0.10);
  // Unlike Scenario 1, (0,2) is NOT stuck at a link floor: it beats (0,1).
  checks.expectGreater("(0,2) > (0,1) (no network wall)", means["(0,2)"], means["(0,1)"]);
  return bench::finish(checks);
}
