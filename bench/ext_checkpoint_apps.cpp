// Extension: periodic checkpointing applications sharing the PFS.
//
// Section IV-D studies concurrent *continuously-writing* IOR jobs; real HPC
// applications burst (compute, then checkpoint).  Using the apps::checkpoint
// model (the authors' own periodic-application setting, ref. [14]) this
// bench asks the natural follow-ups on Scenario-2 PlaFRIM:
//   * synchronized bursts collide -> individual checkpoints slow down;
//   * a phase offset (I/O scheduling!) removes the collision entirely;
//   * either way the aggregate data moved is the same, and Lesson #7 still
//     holds: the slowdown comes from sharing bandwidth, not from sharing
//     OSTs (both apps stripe over all eight targets here).
#include <map>

#include "apps/checkpoint.hpp"
#include "bench/common.hpp"
#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "stats/summary.hpp"
#include "util/error.hpp"

using namespace beesim;
using namespace beesim::util::literals;

namespace {

struct PairOutcome {
  double meanBurstSeconds = 0.0;   // app A's mean checkpoint duration
  double makespan = 0.0;           // app A's makespan
};

PairOutcome runPair(util::Seconds offset, std::uint64_t seed) {
  sim::FluidSimulator fluid;
  const auto cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, 16);
  beegfs::Deployment deployment(fluid, cluster, beegfs::BeegfsParams{}, util::Rng(seed));
  beegfs::FileSystem fs(deployment, util::Rng(seed + 1));

  apps::CheckpointSpec specA;
  specA.job = ior::IorJob::onFirstNodes(8, 8);
  specA.checkpointBytes = 16_GiB;
  specA.computePhase = 30.0;
  specA.iterations = 4;
  specA.pinnedTargets = {0, 1, 2, 3, 4, 5, 6, 7};

  auto specB = specA;
  specB.job.nodeIds.clear();
  for (std::size_t n = 8; n < 16; ++n) specB.job.nodeIds.push_back(n);
  specB.filePrefix = "/beegfs/ckptB";

  apps::CheckpointResult resultA;
  bool doneA = false;
  bool doneB = false;
  apps::launchCheckpointApp(fs, specA, 0.0, [&](const apps::CheckpointResult& r) {
    resultA = r;
    doneA = true;
  });
  apps::launchCheckpointApp(fs, specB, offset,
                            [&](const apps::CheckpointResult&) { doneB = true; });
  fluid.run();
  BEESIM_ASSERT(doneA && doneB, "checkpoint pair did not complete");

  PairOutcome outcome;
  for (const auto d : resultA.checkpointDurations) outcome.meanBurstSeconds += d;
  outcome.meanBurstSeconds /= static_cast<double>(resultA.checkpointDurations.size());
  outcome.makespan = resultA.makespan;
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const auto reps = std::min<std::size_t>(bench::repetitions(), 40);

  // Offsets as a fraction of the burst-free period: 0 = fully synchronized.
  const std::vector<util::Seconds> offsets{0.0, 2.0, 5.0, 10.0, 15.0};
  util::TableWriter table(
      {"start offset (s)", "mean burst (s)", "slowdown vs best", "app A makespan (s)"});
  std::map<double, double> burst;
  std::map<double, double> makespan;
  for (const auto offset : offsets) {
    // Seed-isolated repetitions: parallel map, then fold in rep order.
    const auto outcomes = harness::parallelMap<PairOutcome>(
        reps, bench::jobs(), [&](std::size_t rep) { return runPair(offset, 19000 + rep); });
    std::vector<double> bursts;
    std::vector<double> spans;
    for (const auto& outcome : outcomes) {
      bursts.push_back(outcome.meanBurstSeconds);
      spans.push_back(outcome.makespan);
    }
    burst[offset] = stats::summarize(bursts).mean;
    makespan[offset] = stats::summarize(spans).mean;
  }
  double best = burst.begin()->second;
  for (const auto& [_, b] : burst) best = std::min(best, b);
  for (const auto offset : offsets) {
    table.addRow({util::fmt(offset, 1), util::fmt(burst[offset], 2),
                  util::fmt(burst[offset] / best, 2) + "x",
                  util::fmt(makespan[offset], 1)});
  }
  bench::printFigure(
      "Extension: two periodic checkpoint apps (8 nodes each, 16 GiB bursts, 30 s compute)",
      table);

  core::CheckList checks("Extension -- checkpoint burst collisions");
  checks.expectGreater("synchronized bursts are >=1.5x slower than staggered",
                       burst[0.0], 1.5 * burst[10.0]);
  checks.expectNear("a 10 s offset fully dodges the collision", burst[10.0], best, 0.05);
  // Partial overlap sits in between.
  checks.expectGreater("2 s offset still collides partially", burst[2.0], burst[10.0]);
  checks.expectGreater("...but less than full synchronization", burst[0.0] * 1.001,
                       burst[2.0]);
  // The compute-dominated makespan barely moves: I/O is <20% of time, so
  // even the worst collision costs the application < 15% end to end.
  checks.expectNear("makespan is compute-dominated either way", makespan[0.0],
                    makespan[10.0], 0.15);
  return bench::finish(checks);
}
