// Figure 4: write bandwidth vs number of compute nodes (8 ppn, stripe 4).
//
// Paper anchors: Scenario 1 goes from ~880 MiB/s at 1 node to a plateau of
// ~1460 MiB/s (+64%); Scenario 2 from ~1631 MiB/s to ~6100 MiB/s (+270%) and
// needs more nodes to get there (Lesson #1).
#include <map>

#include "bench/common.hpp"
#include "stats/plot.hpp"
#include "stats/summary.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  core::CheckList checks("Fig. 4 -- compute nodes");
  std::map<std::string, std::vector<double>> meanSeries;  // per scenario

  for (const auto scenario : {topo::Scenario::kEthernet10G, topo::Scenario::kOmniPath100G}) {
    const bool s1 = scenario == topo::Scenario::kEthernet10G;
    const std::vector<std::size_t> nodeCounts =
        s1 ? std::vector<std::size_t>{1, 2, 4, 8, 16}
           : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};

    std::vector<harness::CampaignEntry> entries;
    for (const auto nodes : nodeCounts) {
      harness::CampaignEntry entry;
      entry.config = bench::plafrimRun(scenario, nodes, 8, 4);
      entry.factors["nodes"] = std::to_string(nodes);
      entries.push_back(std::move(entry));
    }
    const auto store = harness::executeCampaign(entries, bench::protocolOptions(), s1 ? 41 : 42,
                                                nullptr, bench::executorOptions("fig04"));

    util::TableWriter table({"nodes", "mean MiB/s", "sd", "min", "max"});
    std::vector<double>& means = meanSeries[s1 ? "s1" : "s2"];
    for (const auto nodes : nodeCounts) {
      const auto s = stats::summarize(
          store.metric("bandwidth_mibps", {{"nodes", std::to_string(nodes)}}));
      means.push_back(s.mean);
      table.addRow({std::to_string(nodes), util::fmt(s.mean, 1), util::fmt(s.sd, 1),
                    util::fmt(s.min, 1), util::fmt(s.max, 1)});
    }
    bench::printFigure(std::string("Fig. 4") + (s1 ? "a" : "b") + ": " +
                           topo::scenarioLabel(scenario) + ", 8 ppn, stripe 4",
                       table);
    {
      stats::Series series;
      series.name = "mean bandwidth";
      for (std::size_t i = 0; i < nodeCounts.size(); ++i) {
        series.x.push_back(static_cast<double>(nodeCounts[i]));
        series.y.push_back(means[i]);
      }
      stats::PlotOptions plot;
      plot.xLabel = "compute nodes";
      plot.yLabel = "MiB/s";
      std::printf("%s\n", stats::renderLines(std::vector<stats::Series>{series}, plot).c_str());
    }
    store.writeCsv(bench::resultsPath(std::string("fig04_") + (s1 ? "s1" : "s2") + ".csv"));
  }

  const auto& s1 = meanSeries["s1"];
  const auto& s2 = meanSeries["s2"];
  // In-text anchors (absolute scale is calibrated; keep generous tolerance).
  checks.expectNear("S1 single node ~880 MiB/s", s1[0], 880.0, 0.10);
  checks.expectNear("S1 plateau ~1460 MiB/s", s1[3], 1460.0, 0.10);
  checks.expectNear("S2 single node ~1631 MiB/s", s2[0], 1631.0, 0.20);
  // The model back-loads Scenario-2 gains towards 32 nodes (steep storage
  // queue ramp), so the 16-node point sits ~25% below the paper's value
  // while the 32-node value is on target; see EXPERIMENTS.md.
  checks.expectNear("S2 16-node value ~6100 MiB/s (wide tol)", s2[4], 6100.0, 0.30);
  // Comparative shapes (the real content of Lesson #1):
  checks.expectRatio("S1 gains ~64% from 1 node to plateau", s1[3], s1[0], 1.64, 0.15);
  checks.expectRatio("S2 gains ~270% from 1 node to plateau", s2[4], s2[0], 3.70, 0.20);
  checks.expectGreater("S2 relative gain exceeds S1's", s2[4] / s2[0], s1[3] / s1[0]);
  // Monotone rise then plateau in both scenarios.
  checks.expectGreater("S1 2 nodes > 1 node", s1[1], s1[0]);
  checks.expectNear("S1 plateau flat 8 -> 16 nodes", s1[4], s1[3], 0.05);
  checks.expectGreater("S2 8 nodes > 4 nodes", s2[3], s2[2]);
  // The model's saturation knee sits between 16 and 32 nodes (the paper's
  // at 16): growth must decelerate towards the plateau.
  checks.expectGreater("S2 growth decelerates towards the plateau", s2[4] / s2[3],
                       s2[5] / s2[4]);
  // S2 needs more nodes: at 4 nodes S1 has plateaued, S2 has not.
  checks.expectGreater("S2 still climbing at 4 nodes (16n >> 4n)", s2[4], 1.2 * s2[2]);
  return bench::finish(checks);
}
