// Figure 5: processes per node (8 vs 16) across node counts.
//
// Paper: doubling ppn does NOT substitute for nodes -- the node-count curve
// keeps its shape, bandwidth stays very similar, with a slight degradation
// in Scenario 2 attributed to intra-node contention (Lesson #3).
#include <map>

#include "bench/common.hpp"
#include "stats/summary.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  core::CheckList checks("Fig. 5 -- processes per node");

  for (const auto scenario : {topo::Scenario::kEthernet10G, topo::Scenario::kOmniPath100G}) {
    const bool s1 = scenario == topo::Scenario::kEthernet10G;
    const std::vector<std::size_t> nodeCounts =
        s1 ? std::vector<std::size_t>{1, 2, 4, 8} : std::vector<std::size_t>{2, 4, 8, 16, 32};

    std::vector<harness::CampaignEntry> entries;
    for (const auto nodes : nodeCounts) {
      for (const int ppn : {8, 16}) {
        harness::CampaignEntry entry;
        entry.config = bench::plafrimRun(scenario, nodes, ppn, 4);
        entry.factors["nodes"] = std::to_string(nodes);
        entry.factors["ppn"] = std::to_string(ppn);
        entries.push_back(std::move(entry));
      }
    }
    const auto store = harness::executeCampaign(entries, bench::protocolOptions(), s1 ? 51 : 52,
                                                nullptr, bench::executorOptions("fig05"));

    util::TableWriter table({"nodes", "8 ppn MiB/s", "16 ppn MiB/s", "16/8 ratio"});
    std::map<int, std::map<std::size_t, double>> means;
    for (const auto nodes : nodeCounts) {
      for (const int ppn : {8, 16}) {
        means[ppn][nodes] = stats::summarize(
                                store.metric("bandwidth_mibps",
                                             {{"nodes", std::to_string(nodes)},
                                              {"ppn", std::to_string(ppn)}}))
                                .mean;
      }
      table.addRow({std::to_string(nodes), util::fmt(means[8][nodes], 1),
                    util::fmt(means[16][nodes], 1),
                    util::fmt(means[16][nodes] / means[8][nodes], 3)});
    }
    bench::printFigure(std::string("Fig. 5") + (s1 ? "a" : "b") + ": " +
                           topo::scenarioLabel(scenario) + ", stripe 4",
                       table);
    store.writeCsv(bench::resultsPath(std::string("fig05_") + (s1 ? "s1" : "s2") + ".csv"));

    const std::string tag = s1 ? " [S1]" : " [S2]";
    // 16 ppn stays close to 8 ppn everywhere (within 10%).
    for (const auto nodes : nodeCounts) {
      checks.expectNear("16 ppn ~= 8 ppn at " + std::to_string(nodes) + " nodes" + tag,
                        means[16][nodes], means[8][nodes], 0.12);
    }
    // The node-count shape is preserved: more nodes still help at 16 ppn.
    checks.expectGreater("16 ppn still scales with nodes" + tag,
                         means[16][nodeCounts.back()], 1.2 * means[16][nodeCounts.front()]);
    if (!s1) {
      // Slight degradation at 16 ppn in Scenario 2 (intra-node contention).
      const auto big = nodeCounts.back();
      checks.expect("S2 shows slight 16-ppn degradation",
                    means[16][big] < means[8][big],
                    util::fmt(means[16][big], 1) + " < " + util::fmt(means[8][big], 1));
    }
  }
  return bench::finish(checks);
}
