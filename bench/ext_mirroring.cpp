// Extension: storage buddy-mirroring vs. OST allocation.
//
// The paper's system runs unmirrored; this bench asks what synchronous
// cross-host replication costs each allocation class, and what it buys when
// an OSS crashes mid-run.  Sweep: four placement classes x {unmirrored,
// mirrored} x {healthy, crash of host 1 with a short outage, same crash
// with a long outage}, in both scenarios.  Mirrored placements pin the
// stripe to the groups' primaries; every group spans both hosts.
//
// Expected shape: while healthy, placements whose replicas land on an
// otherwise-idle host replicate for (almost) free, and a balanced placement
// pays the full price -- about half the unmirrored bandwidth, since every
// link/disk now carries a second copy.  Under the crash, mirroring turns
// the degraded-stripe rewrite storm into clean failovers: zero bytes lost,
// nothing rewritten, and once the host returns the background resync
// streams back exactly the delta accrued while degraded -- so both the
// resynced bytes and the resync time grow with the outage.
#include <map>

#include "bench/common.hpp"
#include "faults/schedule.hpp"
#include "stats/summary.hpp"

using namespace beesim;

namespace {

double meanOf(const std::vector<double>& values) {
  return values.empty() ? 0.0 : stats::summarize(values).mean;
}

struct Placement {
  std::vector<std::size_t> unmirrored;  // pinned targets for the plain run
  std::vector<std::size_t> primaries;   // pinned targets for the mirrored run
  std::vector<std::pair<std::size_t, std::size_t>> groups;
};

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  // Host 0 serves targets 0..3, host 1 (the one that crashes) 4..7.  Every
  // mirror group pairs one target per host; the mirrored placement writes to
  // the primaries and lets the secondaries absorb the replica stream.
  const std::map<std::string, Placement> placements{
      {"(0,4)live",
       {{0, 1, 2, 3}, {0, 1, 2, 3}, {{0, 4}, {1, 5}, {2, 6}, {3, 7}}}},
      {"(0,4)dead",
       {{4, 5, 6, 7}, {4, 5, 6, 7}, {{4, 0}, {5, 1}, {6, 2}, {7, 3}}}},
      {"(2,2)", {{0, 1, 4, 5}, {0, 1, 4, 5}, {{0, 6}, {1, 7}, {4, 2}, {5, 3}}}},
      {"(4,4)",
       {{0, 1, 2, 3, 4, 5, 6, 7}, {0, 5, 2, 7}, {{0, 4}, {5, 1}, {2, 6}, {7, 3}}}},
  };
  struct ScenarioSpec {
    topo::Scenario scenario;
    const char* label;
    double crash;    // well inside every placement's run
    double shortOn;  // host 1 returns quickly ...
    double longOn;   // ... or after a long outage (more resync debt)
  };
  const std::vector<ScenarioSpec> scenarios{
      {topo::Scenario::kEthernet10G, "1", 5.0, 8.0, 14.0},
      {topo::Scenario::kOmniPath100G, "2", 4.0, 6.0, 10.0},
  };
  // Segmented writes (IOR -s), as in ext_failures: only the in-flight
  // segment is exposed to a failure, not the whole file.
  constexpr int kSegments = 32;

  std::vector<harness::CampaignEntry> entries;
  for (const auto& spec : scenarios) {
    for (const auto& [key, placement] : placements) {
      for (const bool mirrored : {false, true}) {
        for (const std::string fault : {"none", "short", "long"}) {
          const auto& targets = mirrored ? placement.primaries : placement.unmirrored;
          harness::CampaignEntry entry;
          entry.config = bench::plafrimRun(spec.scenario, 8, 8,
                                           static_cast<unsigned>(targets.size()));
          entry.config.ior.blockSize /= kSegments;
          entry.config.ior.segments = kSegments;
          entry.config.pinnedTargets = targets;
          if (mirrored) {
            entry.config.fs.mirror.enabled = true;
            entry.config.fs.mirror.groups = placement.groups;
            entry.config.fs.defaultStripe.mirror = true;
          }
          if (fault != "none") {
            const double on = fault == "short" ? spec.shortOn : spec.longOn;
            entry.config.faults.schedule = faults::parseSchedule(
                "off:h1@" + util::fmt(spec.crash, 1) + ";on:h1@" + util::fmt(on, 1));
            // Tuned client, as in ext_failures: 0.5 s comm timeout, one
            // same-target retry, then degraded-stripe failover.  Mirrored
            // chunks never consult the watchdog -- the registry flip is the
            // switchover signal -- but the plain baseline needs it.
            entry.config.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
            entry.config.fs.faults.ioTimeout = 0.5;
            entry.config.fs.faults.backoffBase = 0.25;
            entry.config.fs.faults.maxRetries = 1;
          }
          entry.factors["scenario"] = spec.label;
          entry.factors["alloc"] = key;
          entry.factors["mirror"] = mirrored ? "on" : "off";
          entry.factors["fault"] = fault;
          entries.push_back(std::move(entry));
        }
      }
    }
  }
  const auto store = harness::executeCampaign(
      entries, bench::protocolOptions(), 211, nullptr, bench::executorOptions("ext_mirroring"));

  const auto metric = [&](const std::string& name, const std::string& sc,
                          const std::string& alloc, const std::string& mirror,
                          const std::string& fault) {
    return meanOf(store.metric(name, {{"scenario", sc},
                                      {"alloc", alloc},
                                      {"mirror", mirror},
                                      {"fault", fault}}));
  };
  const auto bw = [&](const std::string& sc, const std::string& alloc,
                      const std::string& mirror, const std::string& fault) {
    return metric("bandwidth_mibps", sc, alloc, mirror, fault);
  };

  util::TableWriter table({"scenario", "alloc", "mirror", "fault", "bandwidth",
                           "failovers", "replica MiB", "lost MiB", "resyncs",
                           "resync MiB", "resync s"});
  for (const auto& spec : scenarios) {
    for (const auto& [key, placement] : placements) {
      for (const std::string mirror : {"off", "on"}) {
        for (const std::string fault : {"none", "short", "long"}) {
          const bool on = mirror == "on";
          table.addRow(
              {spec.label, key, mirror, fault,
               util::fmt(bw(spec.label, key, mirror, fault), 1),
               on ? util::fmt(metric("mirror_failovers", spec.label, key, mirror, fault), 2)
                  : "-",
               on ? util::fmt(metric("mirror_replica_mib", spec.label, key, mirror, fault), 1)
                  : "-",
               on ? util::fmt(metric("mirror_lost_mib", spec.label, key, mirror, fault), 1)
                  : "-",
               on ? util::fmt(metric("resync_jobs", spec.label, key, mirror, fault), 2)
                  : "-",
               on ? util::fmt(metric("resync_mib", spec.label, key, mirror, fault), 1)
                  : "-",
               on ? util::fmt(metric("resync_seconds", spec.label, key, mirror, fault), 2)
                  : "-"});
        }
      }
    }
  }
  bench::printFigure("Ext: buddy mirroring vs allocation (8 nodes x 8 ppn)", table);
  store.writeCsv(bench::resultsPath("ext_mirroring.csv"));

  const double totalMiB = util::toMiB(bench::kTotalData);
  core::CheckList checks("Ext -- synchronous mirroring, failover and resync");
  for (const auto& spec : scenarios) {
    const std::string sc = spec.label;
    const std::string tag = " [S" + sc + "]";

    // -- Healthy: replication cost by placement. --------------------------
    // A balanced placement pushes the second copy through the same links
    // and disks as the first: about half the unmirrored bandwidth.
    checks.expectRatio("healthy (4,4) mirrored ~ half of unmirrored" + tag,
                       bw(sc, "(4,4)", "on", "none"), bw(sc, "(4,4)", "off", "none"), 0.5,
                       0.15);
    if (sc == "1") {
      // Link-bound only: with disks to spare, (2,2)'s replicas ride the
      // idle OSTs instead (checked below); on 10G both NICs saturate.
      checks.expectRatio("healthy (2,2) mirrored ~ half of unmirrored" + tag,
                         bw(sc, "(2,2)", "on", "none"), bw(sc, "(2,2)", "off", "none"),
                         0.5, 0.10);
    } else {
      checks.expectNear("healthy (2,2) replicas ride the idle disks" + tag,
                        bw(sc, "(2,2)", "on", "none"), bw(sc, "(2,2)", "off", "none"),
                        0.15);
    }
    // Replicating into an otherwise-idle host is (nearly) free.
    checks.expectNear("healthy (0,4)live mirrors for ~free" + tag,
                      bw(sc, "(0,4)live", "on", "none"), bw(sc, "(0,4)live", "off", "none"),
                      0.15);
    // Every healthy mirrored run replicates every byte before acking.
    double replicated = 0.0;
    double healthyFailovers = 0.0;
    double healthyResyncs = 0.0;
    for (const auto& [key, placement] : placements) {
      replicated += metric("mirror_replica_mib", sc, key, "on", "none");
      healthyFailovers += metric("mirror_failovers", sc, key, "on", "none");
      healthyResyncs += metric("resync_jobs", sc, key, "on", "none");
    }
    checks.expectNear("healthy runs replicate every byte" + tag, replicated, 4 * totalMiB,
                      1e-9);
    checks.expect("healthy runs never fail over or resync" + tag,
                  healthyFailovers == 0.0 && healthyResyncs == 0.0,
                  util::fmt(healthyFailovers + healthyResyncs, 2));

    // -- Crash: failover without loss. ------------------------------------
    double lost = 0.0;
    double rewritten = 0.0;
    double aborted = 0.0;
    for (const auto& [key, placement] : placements) {
      for (const std::string fault : {"short", "long"}) {
        lost += metric("mirror_lost_mib", sc, key, "on", fault);
        rewritten += metric("fault_rewritten_mib", sc, key, "on", fault);
        aborted += metric("fault_aborted", sc, key, "on", fault);
      }
    }
    checks.expect("failover loses zero bytes" + tag, lost == 0.0, util::fmt(lost, 1));
    checks.expect("mirrored crashes rewrite nothing" + tag, rewritten == 0.0,
                  util::fmt(rewritten, 1));
    checks.expect("no mirrored run aborts" + tag, aborted == 0.0, util::fmt(aborted, 0));
    // Failover engages exactly where the primaries died.
    checks.expect("(0,4)dead fails over every group" + tag,
                  metric("mirror_failovers", sc, "(0,4)dead", "on", "short") == 4.0,
                  util::fmt(metric("mirror_failovers", sc, "(0,4)dead", "on", "short"), 2));
    checks.expect("(0,4)live keeps its primaries" + tag,
                  metric("mirror_failovers", sc, "(0,4)live", "on", "short") == 0.0,
                  util::fmt(metric("mirror_failovers", sc, "(0,4)live", "on", "short"), 2));

    // -- Resync: the delta grows with the outage, and so does the stream. --
    for (const std::string key : {"(4,4)", "(0,4)live"}) {
      checks.expectGreater("longer outage owes more resync: " + key + tag,
                           metric("resync_mib", sc, key, "on", "long"),
                           metric("resync_mib", sc, key, "on", "short"));
      checks.expectGreater("resync time monotone in the delta: " + key + tag,
                           metric("resync_seconds", sc, key, "on", "long"),
                           metric("resync_seconds", sc, key, "on", "short"));
    }
  }
  return bench::finish(checks);
}
