// Extension: the Fig. 8 (min,max) story *re-derived from measured traffic*.
//
// The paper infers the role of the allocation split from bandwidth
// distributions; with the observability pipeline the simulator can show the
// mechanism directly.  Scenario-1 campaigns run with per-run utilization
// measurement on: each repetition reports how many MiB crossed each server's
// NIC and what fraction of the run the link was busy, and the campaign rows
// carry a link-imbalance index (max/mean of the per-server traffic).  The
// checks below re-derive the Fig. 8 ordering from those measurements: the
// imbalance index is a pure function of the (min,max) split -- 2.0 for
// (0,4), 1.5 for (1,3), 1.0 for balanced -- and bandwidth falls exactly as
// the measured imbalance rises.
//
// The campaign also exercises the harness profiling counters (solver
// resolves, solver wall time, per-run wall time) and measures the overhead
// of tracing itself; the numbers land in BENCH_observability.json.
#include <cmath>
#include <fstream>
#include <map>

#include "bench/common.hpp"
#include "harness/run.hpp"
#include "stats/summary.hpp"
#include "util/json.hpp"

using namespace beesim;

namespace {

double mean(const std::vector<double>& values) {
  return stats::summarize(values).mean;
}

/// Wall time of `count` repetitions of runOnce under `config`.
double timeRuns(const harness::RunConfig& config, std::size_t count) {
  using Clock = std::chrono::steady_clock;
  const auto start = Clock::now();
  for (std::size_t i = 0; i < count; ++i) (void)harness::runOnce(config, 7000 + i);
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  // Equal stripe counts across the unbalanced splits so the comparison
  // isolates the (min,max) placement; (4,4) is the fully-striped reference.
  const std::map<std::string, std::vector<std::size_t>> placements{
      {"(0,4)", {4, 5, 6, 7}},
      {"(1,3)", {0, 4, 5, 6}},
      {"(2,2)", {0, 1, 4, 5}},
      {"(4,4)", {0, 1, 2, 3, 4, 5, 6, 7}},
  };

  std::vector<harness::CampaignEntry> entries;
  for (const auto& [key, targets] : placements) {
    harness::CampaignEntry entry;
    entry.config = bench::plafrimRun(topo::Scenario::kEthernet10G, 8, 8,
                                     static_cast<unsigned>(targets.size()));
    entry.config.pinnedTargets = targets;
    entry.config.observe.utilization = true;
    entry.config.observe.profile = true;
    entry.factors["alloc"] = key;
    entries.push_back(std::move(entry));
  }

  harness::CampaignTotals totals;
  auto exec = bench::executorOptions("ext_utilization");
  exec.totals = &totals;
  const auto store =
      harness::executeCampaign(entries, bench::protocolOptions(), 81, nullptr, exec);
  store.writeCsv(bench::resultsPath("ext_utilization.csv"));

  std::map<std::string, double> bw;
  std::map<std::string, double> imbalance;
  std::map<std::string, double> busy0;
  std::map<std::string, double> busy1;
  std::map<std::string, double> srv0Mib;
  std::map<std::string, double> srv1Mib;
  util::TableWriter table(
      {"alloc", "mean MiB/s", "srv0 MiB", "srv1 MiB", "busy0", "busy1", "imbalance"});
  for (const auto& [key, targets] : placements) {
    const std::map<std::string, std::string> filter{{"alloc", key}};
    bw[key] = mean(store.metric("bandwidth_mibps", filter));
    imbalance[key] = mean(store.metric("link_imbalance", filter));
    busy0[key] = mean(store.metric("srv0_busy_frac", filter));
    busy1[key] = mean(store.metric("srv1_busy_frac", filter));
    srv0Mib[key] = mean(store.metric("srv0_mib", filter));
    srv1Mib[key] = mean(store.metric("srv1_mib", filter));
    table.addRow({key, util::fmt(bw[key], 1), util::fmt(srv0Mib[key], 0),
                  util::fmt(srv1Mib[key], 0), util::fmt(busy0[key], 3),
                  util::fmt(busy1[key], 3), util::fmt(imbalance[key], 3)});
  }
  bench::printFigure(
      "Extension: measured per-server traffic vs (min,max) allocation (Scenario 1)",
      table);

  // Tracing-overhead measurement: the same configuration with and without
  // the observability stack attached (small, fixed repetition count -- this
  // measures the host, not the model).
  harness::RunConfig plain = entries.front().config;
  plain.observe = {};
  const std::size_t overheadReps = 10;
  const double plainSeconds = timeRuns(plain, overheadReps);
  const double tracedSeconds = timeRuns(entries.front().config, overheadReps);
  const double overhead = plainSeconds > 0.0 ? tracedSeconds / plainSeconds - 1.0 : 0.0;

  // Traced and untraced runs must agree bitwise: the tracer only listens.
  const auto plainRecord = harness::runOnce(plain, 4242);
  const auto tracedRecord = harness::runOnce(entries.front().config, 4242);

  core::CheckList checks("Extension -- utilization observability, Scenario 1");
  // The imbalance index is a pure function of the placement split:
  checks.expectNear("(0,4) imbalance = 2.0", imbalance["(0,4)"], 2.0, 0.01);
  checks.expectNear("(1,3) imbalance = 1.5", imbalance["(1,3)"], 1.5, 0.01);
  checks.expectNear("(2,2) imbalance = 1.0", imbalance["(2,2)"], 1.0, 0.01);
  checks.expectNear("(4,4) imbalance = 1.0", imbalance["(4,4)"], 1.0, 0.01);
  // Measured traffic split matches the byte math (3 of 4 stripes on host 1):
  checks.expectNear("(1,3) srv1 carries 3/4 of the data",
                    srv1Mib["(1,3)"] / (srv0Mib["(1,3)"] + srv1Mib["(1,3)"]), 0.75, 0.01);
  checks.expectNear("(0,4) srv0 idle", srv0Mib["(0,4)"] + 1.0, 1.0, 0.01);
  // Fig. 8 ordering, re-derived from the measurement: bandwidth falls
  // monotonically as the measured imbalance rises.
  checks.expectGreater("imbalance orders (0,4) > (1,3)", imbalance["(0,4)"],
                       imbalance["(1,3)"]);
  checks.expectGreater("imbalance orders (1,3) > (2,2)", imbalance["(1,3)"],
                       imbalance["(2,2)"]);
  checks.expectGreater("bandwidth (2,2) > (1,3)", bw["(2,2)"], bw["(1,3)"]);
  checks.expectGreater("bandwidth (1,3) > (0,4)", bw["(1,3)"], bw["(0,4)"]);
  // Balanced placement loads both servers alike:
  checks.expect("(4,4) busy fractions near-equal",
                std::abs(busy0["(4,4)"] - busy1["(4,4)"]) < 0.05,
                util::fmt(busy0["(4,4)"], 3) + " vs " + util::fmt(busy1["(4,4)"], 3));
  // Profiling counters flowed up to the campaign totals:
  const std::size_t plannedRuns = placements.size() * bench::repetitions();
  checks.expect("totals cover every run", totals.runs == plannedRuns,
                std::to_string(totals.runs) + "/" + std::to_string(plannedRuns));
  checks.expect("solver resolves counted", totals.resolves > 0,
                std::to_string(totals.resolves));
  checks.expect("solver wall time profiled", totals.solveSeconds > 0.0,
                util::fmt(totals.solveSeconds * 1e3, 2) + " ms");
  checks.expect("per-run wall time accumulated",
                totals.runWallSeconds >= totals.maxRunWallSeconds &&
                    totals.maxRunWallSeconds > 0.0,
                util::fmt(totals.runWallSeconds, 3) + " s total");
  // The tracer observes without perturbing the simulation:
  checks.expect("traced run bitwise-equal bandwidth",
                tracedRecord.ior.bandwidth == plainRecord.ior.bandwidth,
                util::fmt(tracedRecord.ior.bandwidth, 6) + " vs " +
                    util::fmt(plainRecord.ior.bandwidth, 6));

  util::JsonObject doc;
  doc["benchmark"] = "observability";
  {
    util::JsonObject t;
    t["runs"] = static_cast<double>(totals.runs);
    t["resolves"] = static_cast<double>(totals.resolves);
    t["solver_iterations"] = static_cast<double>(totals.solverIterations);
    t["run_wall_seconds"] = totals.runWallSeconds;
    t["max_run_wall_seconds"] = totals.maxRunWallSeconds;
    t["solve_seconds"] = totals.solveSeconds;
    t["campaign_wall_seconds"] = totals.campaignWallSeconds;
    doc["campaign_totals"] = util::JsonValue(std::move(t));
  }
  {
    util::JsonArray allocs;
    for (const auto& [key, targets] : placements) {
      util::JsonObject a;
      a["alloc"] = key;
      a["bandwidth_mibps"] = bw[key];
      a["link_imbalance"] = imbalance[key];
      a["srv0_mib"] = srv0Mib[key];
      a["srv1_mib"] = srv1Mib[key];
      a["srv0_busy_frac"] = busy0[key];
      a["srv1_busy_frac"] = busy1[key];
      allocs.push_back(util::JsonValue(std::move(a)));
    }
    doc["allocations"] = util::JsonValue(std::move(allocs));
  }
  {
    util::JsonObject o;
    o["repetitions"] = static_cast<double>(overheadReps);
    o["plain_seconds"] = plainSeconds;
    o["traced_seconds"] = tracedSeconds;
    o["overhead_fraction"] = overhead;
    doc["tracing_overhead"] = util::JsonValue(std::move(o));
  }
  {
    const char* out = std::getenv("BEESIM_BENCH_JSON");
    const std::string path =
        out != nullptr && *out != '\0' ? out : "BENCH_observability.json";
    std::ofstream file(path);
    file << util::JsonValue(std::move(doc)).dump(2) << "\n";
    std::printf("observability numbers written to %s (tracing overhead %+.1f%%)\n",
                path.c_str(), overhead * 100.0);
  }
  return bench::finish(checks);
}
