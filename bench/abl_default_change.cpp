// Ablation A2: the PlaFRIM administrators' change.
//
// The paper's conclusions led PlaFRIM to change its default stripe count
// from 4 to 8; the authors estimate a transparent write-bandwidth gain of
// more than 40%.  This bench measures exactly that before/after pair in
// both scenarios and runs the StripeCountAdvisor on the full measurement
// set, which must recommend the maximum count.
#include "bench/common.hpp"
#include "core/advisor.hpp"
#include "stats/summary.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  core::CheckList checks("Ablation A2 -- default stripe count 4 -> 8");

  for (const auto scenario : {topo::Scenario::kEthernet10G, topo::Scenario::kOmniPath100G}) {
    const bool s1 = scenario == topo::Scenario::kEthernet10G;
    const std::size_t nodes = s1 ? 8 : 32;

    std::vector<harness::CampaignEntry> entries;
    for (unsigned count = 1; count <= 8; ++count) {
      harness::CampaignEntry entry;
      entry.config = bench::plafrimRun(scenario, nodes, 8, count);
      entry.factors["count"] = std::to_string(count);
      entries.push_back(std::move(entry));
    }
    const auto cluster = entries.front().config.cluster;
    const auto store = harness::executeCampaign(entries, bench::protocolOptions(),
                                                s1 ? 161 : 162,
                                                bench::allocationAnnotator(cluster),
                                                bench::executorOptions("abl_default_change"));

    // Feed the advisor with every (count, allocation, bandwidth) sample.
    core::StripeCountAdvisor advisor;
    for (const auto& row : store.rows()) {
      // Parse the allocation back from its "(a,b)" key via per-host counts.
      const auto& key = row.factors.at("alloc");
      const auto comma = key.find(',');
      const std::size_t a = std::stoul(key.substr(1, comma - 1));
      const std::size_t b = std::stoul(key.substr(comma + 1));
      advisor.add(static_cast<unsigned>(std::stoul(row.factors.at("count"))),
                  core::Allocation(std::vector<std::size_t>{a, b}),
                  row.metrics.at("bandwidth_mibps"));
    }
    const auto recommendation = advisor.recommend();

    const double before =
        stats::summarize(store.metric("bandwidth_mibps", {{"count", "4"}})).mean;
    const double after =
        stats::summarize(store.metric("bandwidth_mibps", {{"count", "8"}})).mean;

    util::TableWriter table({"default", "mean MiB/s", "gain"});
    table.addRow({"stripe count 4 (old)", util::fmt(before, 1), ""});
    table.addRow({"stripe count 8 (new)", util::fmt(after, 1),
                  "+" + util::fmt(100.0 * (after - before) / before, 1) + "%"});
    bench::printFigure(std::string("Ablation A2, ") + topo::scenarioLabel(scenario), table);
    std::printf("advisor: %s\n\n", recommendation.rationale.c_str());

    const std::string tag = s1 ? " [S1]" : " [S2]";
    checks.expect("advisor recommends the maximum stripe count" + tag,
                  recommendation.stripeCount == 8,
                  "recommended " + std::to_string(recommendation.stripeCount));
    // The paper estimates >40% transparent gain; that figure is driven by
    // Scenario 1 (1460 -> 2200 MiB/s = +51%).  Its own Scenario-2 numbers
    // (6100 -> 8064) are a +32% gain, so the S2 bar sits at +25%.
    checks.expectGreater("default change gains > 40% (paper's estimate)" + tag, after,
                         (s1 ? 1.4 : 1.25) * before);
  }
  return bench::finish(checks);
}
