// Figure 2: impact of the total data size on write bandwidth.
//
// Paper setup: 32 processes on 4 nodes, stripe count 4 (round-robin), both
// scenarios, 100 repetitions per size; sizes from small to 64 GiB.
// Expected shapes: bandwidth is low and noisy for small sizes, rises with
// the size and stabilizes between 16 and 32 GiB -- which is why every other
// experiment of the paper uses 32 GiB.
#include "bench/common.hpp"
#include "stats/summary.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const std::vector<util::Bytes> sizes{256_MiB, 1_GiB, 2_GiB, 4_GiB,
                                       8_GiB,   16_GiB, 32_GiB, 64_GiB};
  core::CheckList checks("Fig. 2 -- data size");

  for (const auto scenario : {topo::Scenario::kEthernet10G, topo::Scenario::kOmniPath100G}) {
    std::vector<harness::CampaignEntry> entries;
    for (const auto size : sizes) {
      harness::CampaignEntry entry;
      entry.config = bench::plafrimRun(scenario, 4, 8, 4, size);
      entry.factors["size_mib"] = std::to_string(size / util::kMiB);
      entries.push_back(std::move(entry));
    }
    const auto store =
        harness::executeCampaign(entries, bench::protocolOptions(),
                                 scenario == topo::Scenario::kEthernet10G ? 21 : 22, nullptr,
                                 bench::executorOptions("fig02"));

    util::TableWriter table({"total size", "mean MiB/s", "sd", "min", "max", "cv %"});
    std::vector<stats::Summary> summaries;
    for (const auto size : sizes) {
      const auto bw = store.metric("bandwidth_mibps",
                                   {{"size_mib", std::to_string(size / util::kMiB)}});
      const auto s = stats::summarize(bw);
      summaries.push_back(s);
      table.addRow({util::formatBytes(size), util::fmt(s.mean, 1), util::fmt(s.sd, 1),
                    util::fmt(s.min, 1), util::fmt(s.max, 1), util::fmt(100 * s.cv(), 1)});
    }
    const bool s1 = scenario == topo::Scenario::kEthernet10G;
    bench::printFigure(std::string("Fig. 2") + (s1 ? "a" : "b") + ": " +
                           topo::scenarioLabel(scenario),
                       table);
    store.writeCsv(bench::resultsPath(std::string("fig02_") + (s1 ? "s1" : "s2") + ".csv"));

    const std::string tag = s1 ? " [S1]" : " [S2]";
    // Small sizes are slower...
    checks.expectGreater("16 GiB mean > 256 MiB mean" + tag, summaries[6].mean,
                         summaries[0].mean);
    // ...and noisier (relative spread): a short transfer samples a single
    // link/device noise epoch, a 32 GiB one averages many.
    checks.expectGreater("256 MiB cv > 1.5x 32 GiB cv" + tag, summaries[0].cv(),
                         1.5 * summaries[6].cv());
    // Performance stabilizes from 16 GiB on: 32 -> 64 GiB changes < 5%.
    checks.expectNear("plateau: 64 GiB within 5% of 32 GiB" + tag, summaries[7].mean,
                      summaries[6].mean, 0.05);
    // 16 GiB is already within 10% of the plateau (paper: "stabilizes
    // starting from a size between 16 and 32 GiB").
    checks.expectNear("16 GiB within 10% of 32 GiB" + tag, summaries[5].mean,
                      summaries[6].mean, 0.10);
  }
  return bench::finish(checks);
}
