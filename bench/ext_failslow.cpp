// Extension: gray failures -- fail-slow injection, peer-relative detection,
// and hedged-write mitigation (DESIGN.md §2.9).
//
// Crash faults are the *easy* case: the registry flips, the client watchdog
// fires, degraded-stripe failover re-routes.  A fail-slow OST -- serving at
// 5% of its rate while staying registered online -- defeats all of that
// machinery: nothing times out, nothing fails over, and the whole run crawls
// behind the sickest slot.  This bench quantifies the gray-failure tax and
// the recovery the mitigation stack buys, across the paper's allocation
// classes and both scenarios:
//
//   * alloc part: {healthy, gray, crash, mitigated} x {(1,3),(2,2),(4,4)}.
//     gray: target 4 (host 1) fail-slows to 5% permanently, nothing detects
//     it.  crash: the *entire* host 1 crashes instead (tuned client,
//     degraded-stripe failover).  mitigated: same gray fault, but hedged
//     writes re-issue lagging chunks and the health monitor watches peers;
//     QoS rides along to prove the token-conservation property under
//     hedging.  The headline check: one undetected fail-slow target costs
//     more bandwidth than losing the whole server -- and the mitigation
//     stack recovers >= 0.85x healthy on the balanced allocation (S1).
//
//   * detect part: host 1's *link* stutters to 8% (a host-wide gray
//     failure).  A monitor-only arm shows the peer-relative score
//     quarantining the host in every rep, and a hedged arm shows the
//     mitigation beating the undetected run.
//
//   * identity part: a feature-off campaign is executed serial and parallel
//     and the two CSVs must match byte for byte (the detector/hedge master
//     switches leave legacy runs untouched).
#include <fstream>
#include <map>
#include <sstream>

#include "bench/common.hpp"
#include "control/health.hpp"
#include "faults/schedule.hpp"
#include "stats/summary.hpp"
#include "util/json.hpp"

using namespace beesim;

namespace {

double meanOf(const std::vector<double>& values) {
  return values.empty() ? 0.0 : stats::summarize(values).mean;
}

std::string slurp(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  std::ostringstream out;
  out << file.rdbuf();
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  // Segmented writes (IOR -s), as in ext_failures/ext_rebalance: a rank's
  // data moves as 32 sequential blocks, so a re-homed (hedged) slot actually
  // carries the later segments and a crash only claws back in-flight ones.
  constexpr int kSegments = 32;
  // 16 GiB total: long enough that detection (~1 s) and hedging (~0.5 s
  // deadline) are small against the run, short enough that the 20x crawl of
  // the undetected gray runs stays tractable.
  constexpr util::Bytes kTotal = 16ULL * util::kGiB;

  const std::map<std::string, std::vector<std::size_t>> placements{
      {"(1,3)", {0, 4, 5, 6}},
      {"(2,2)", {0, 1, 4, 5}},
      {"(4,4)", {0, 1, 2, 3, 4, 5, 6, 7}},
  };
  struct ScenarioSpec {
    topo::Scenario scenario;
    const char* label;
    double onset;  // fault time: past ramp-up, well inside every run
  };
  const std::vector<ScenarioSpec> scenarios{
      {topo::Scenario::kEthernet10G, "1", 2.0},
      {topo::Scenario::kOmniPath100G, "2", 1.0},
  };

  const auto tunedClient = [](harness::RunConfig& config) {
    config.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
    config.fs.faults.ioTimeout = 0.5;
    config.fs.faults.backoffBase = 0.25;
    config.fs.faults.maxRetries = 1;
  };
  const auto mitigation = [](harness::RunConfig& config) {
    config.fs.hedge.enabled = true;
    config.fs.hedge.deadline = 0.5;
    config.health.enabled = true;   // defaults: ratio 0.5, patience 1 s
    config.qos.enabled = true;      // generous: proves charge-once, no throttle
    config.qos.rate = 100000.0;
  };

  std::vector<harness::CampaignEntry> entries;
  for (const auto& spec : scenarios) {
    for (const auto& [key, targets] : placements) {
      for (const std::string variant : {"healthy", "gray", "crash", "mitigated"}) {
        harness::CampaignEntry entry;
        entry.config = bench::plafrimRun(spec.scenario, 8, 8,
                                         static_cast<unsigned>(targets.size()), kTotal);
        entry.config.ior.blockSize /= kSegments;
        entry.config.ior.segments = kSegments;
        entry.config.pinnedTargets = targets;
        const std::string at = util::fmt(spec.onset, 1);
        if (variant == "gray" || variant == "mitigated") {
          // Permanent single-target fail-slow: dead enough to wreck the run,
          // alive enough that the undetected variant still terminates.
          entry.config.faults.schedule = faults::parseSchedule("slow:t4@" + at + "=0.05");
        } else if (variant == "crash") {
          entry.config.faults.schedule = faults::parseSchedule("off:h1@" + at);
          tunedClient(entry.config);
        }
        if (variant == "mitigated") mitigation(entry.config);
        entry.factors["part"] = "alloc";
        entry.factors["scenario"] = spec.label;
        entry.factors["alloc"] = key;
        entry.factors["variant"] = variant;
        entries.push_back(std::move(entry));
      }
    }
  }
  // Detection part (S1): a host-wide link stutter, the gray failure the
  // peer-relative score exists for.  Three arms: "monitored" runs the
  // detector alone, so the stuttering host stays busy (its flows crawl but
  // never leave) and the quarantine lands deterministically; "mitigated"
  // adds hedging, where winning hedges evacuate the sick host -- an idle
  // host has no busy samples to score, so detection there races the drain
  // and the quarantine count is best-effort.  The detector checks anchor on
  // the monitored arm, the bandwidth check on the mitigated one.
  for (const std::string variant : {"undetected", "monitored", "mitigated"}) {
    harness::CampaignEntry entry;
    entry.config = bench::plafrimRun(topo::Scenario::kEthernet10G, 8, 8, 8, kTotal);
    entry.config.ior.blockSize /= kSegments;
    entry.config.ior.segments = kSegments;
    entry.config.pinnedTargets = std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7};
    entry.config.faults.schedule = faults::parseSchedule("link:h1@2.0=0.08");
    if (variant == "monitored") {
      entry.config.health.enabled = true;  // defaults: ratio 0.5, patience 1 s
    } else if (variant == "mitigated") {
      mitigation(entry.config);
    }
    entry.factors["part"] = "detect";
    entry.factors["scenario"] = "1";
    entry.factors["alloc"] = "(4,4)";
    entry.factors["variant"] = variant;
    entries.push_back(std::move(entry));
  }

  const auto store = harness::executeCampaign(entries, bench::protocolOptions(), 431,
                                              nullptr,
                                              bench::executorOptions("ext_failslow"));
  store.writeCsv(bench::resultsPath("ext_failslow.csv"));

  const auto metric = [&](const std::string& name, const std::string& part,
                          const std::string& sc, const std::string& alloc,
                          const std::string& variant) {
    return meanOf(store.metric(name, {{"part", part},
                                      {"scenario", sc},
                                      {"alloc", alloc},
                                      {"variant", variant}}));
  };
  const auto bw = [&](const std::string& sc, const std::string& alloc,
                      const std::string& variant) {
    return metric("bandwidth_mibps", "alloc", sc, alloc, variant);
  };

  util::TableWriter table({"part", "scenario", "alloc", "variant", "bandwidth",
                           "hedges", "hedge wins", "quarantines"});
  for (const auto& entry : entries) {
    const auto part = entry.factors.at("part");
    const auto sc = entry.factors.at("scenario");
    const auto alloc = entry.factors.at("alloc");
    const auto variant = entry.factors.at("variant");
    const bool hedged = entry.config.fs.hedge.enabled;
    const bool monitored = entry.config.health.enabled;
    table.addRow(
        {part, sc, alloc, variant,
         util::fmt(metric("bandwidth_mibps", part, sc, alloc, variant), 1),
         hedged ? util::fmt(metric("hedge_issued", part, sc, alloc, variant), 2) : "-",
         hedged ? util::fmt(metric("hedge_wins", part, sc, alloc, variant), 2) : "-",
         monitored ? util::fmt(metric("gray_quarantines", part, sc, alloc, variant), 2)
                   : "-"});
  }
  bench::printFigure("Ext: gray failures -- fail-slow vs crash vs mitigation (8x8)",
                     table);

  core::CheckList checks("Ext -- gray-failure robustness");
  for (const auto& spec : scenarios) {
    const std::string sc = spec.label;
    const std::string tag = " [S" + sc + "]";
    for (const auto& [key, targets] : placements) {
      // (a) The headline: one *undetected* fail-slow target costs more than
      // losing the entire server to a clean crash.
      checks.expectGreater("undetected fail-slow worse than host crash, " + key + tag,
                           bw(sc, key, "crash"), bw(sc, key, "gray"));
      // Mitigation always pays for itself against the undetected run.
      checks.expectGreater("mitigation beats undetected gray, " + key + tag,
                           bw(sc, key, "mitigated"), bw(sc, key, "gray"));
    }
    // Hedges actually engage and win on the mitigated runs.
    checks.expectGreater("hedges engage on mitigated (4,4)" + tag,
                         metric("hedge_issued", "alloc", sc, "(4,4)", "mitigated"),
                         0.999);
    checks.expectGreater("hedges win on mitigated (4,4)" + tag,
                         metric("hedge_wins", "alloc", sc, "(4,4)", "mitigated"), 0.999);
    // (c) Token conservation under hedging: every logical MiB charged
    // exactly once, duplicate hedge legs never re-admitted.
    const double issued = metric("qos_issued_mib", "alloc", sc, "(4,4)", "mitigated");
    const double planned = static_cast<double>(kTotal) / static_cast<double>(util::kMiB);
    checks.expect("QoS charges each logical MiB once under hedging" + tag,
                  issued == planned,
                  util::fmt(issued, 3) + " MiB issued vs " + util::fmt(planned, 3) +
                      " planned");
  }
  // (b) Acceptance: on the balanced allocation in Scenario 1 (server links
  // the bottleneck, the paper's allocation-sensitive case) the mitigation
  // stack recovers at least 0.85x the healthy bandwidth.
  checks.expectGreater("mitigated (4,4) >= 0.85 x healthy [S1]",
                       bw("1", "(4,4)", "mitigated"), 0.85 * bw("1", "(4,4)", "healthy"));
  checks.expectGreater("mitigated (2,2) >= 0.85 x healthy [S1]",
                       bw("1", "(2,2)", "mitigated"), 0.85 * bw("1", "(2,2)", "healthy"));

  // Detection part: the peer-relative monitor quarantines the stuttering
  // host (monitor-only arm: nothing evacuates the host, so every rep must
  // catch it) and the steered hedges beat the undetected run.
  checks.expectGreater("host-wide stutter is quarantined",
                       metric("gray_quarantines", "detect", "1", "(4,4)", "monitored"),
                       0.999);
  checks.expectGreater("suspects precede the quarantine",
                       metric("gray_suspects", "detect", "1", "(4,4)", "monitored"),
                       0.999);
  checks.expectGreater("detection + hedging beats the undetected stutter",
                       metric("bandwidth_mibps", "detect", "1", "(4,4)", "mitigated"),
                       metric("bandwidth_mibps", "detect", "1", "(4,4)", "undetected"));

  // (d) Feature-off byte identity: the same feature-off campaign executed
  // serial and parallel writes byte-identical CSVs (master switches off =
  // nothing constructed = legacy bytes; also the --jobs contract).
  {
    harness::CampaignEntry off;
    off.config = bench::plafrimRun(topo::Scenario::kEthernet10G, 8, 8, 8, 4 * util::kGiB);
    off.config.fs.hedge = beegfs::HedgePolicy{};   // explicitly off
    off.config.health = control::HealthPolicy{};   // explicitly off
    off.factors["part"] = "identity";
    harness::ProtocolOptions protocol;
    protocol.repetitions = 5;
    harness::ExecutorOptions serial;
    serial.jobs = 1;
    harness::ExecutorOptions parallel;
    parallel.jobs = 4;
    const auto a = harness::executeCampaign({off}, protocol, 431, nullptr, serial);
    const auto b = harness::executeCampaign({off}, protocol, 431, nullptr, parallel);
    const auto pathA = bench::resultsPath("ext_failslow_identity_serial.csv");
    const auto pathB = bench::resultsPath("ext_failslow_identity_parallel.csv");
    a.writeCsv(pathA);
    b.writeCsv(pathB);
    const auto bytesA = slurp(pathA);
    const auto bytesB = slurp(pathB);
    checks.expect("feature-off campaign CSVs are byte-identical",
                  !bytesA.empty() && bytesA == bytesB,
                  util::fmt(static_cast<double>(bytesA.size()), 0) + " bytes");
  }

  util::JsonObject doc;
  doc["benchmark"] = "failslow";
  {
    util::JsonArray rows;
    for (const auto& entry : entries) {
      const auto part = entry.factors.at("part");
      const auto sc = entry.factors.at("scenario");
      const auto alloc = entry.factors.at("alloc");
      const auto variant = entry.factors.at("variant");
      util::JsonObject row;
      row["part"] = part;
      row["scenario"] = sc;
      row["alloc"] = alloc;
      row["variant"] = variant;
      row["bandwidth_mibps"] = metric("bandwidth_mibps", part, sc, alloc, variant);
      if (entry.config.fs.hedge.enabled) {
        row["hedge_issued"] = metric("hedge_issued", part, sc, alloc, variant);
        row["hedge_wins"] = metric("hedge_wins", part, sc, alloc, variant);
        row["hedge_mib"] = metric("hedge_mib", part, sc, alloc, variant);
      }
      if (entry.config.health.enabled) {
        row["gray_suspects"] = metric("gray_suspects", part, sc, alloc, variant);
        row["gray_quarantines"] = metric("gray_quarantines", part, sc, alloc, variant);
      }
      if (entry.config.qos.enabled) {
        row["qos_issued_mib"] = metric("qos_issued_mib", part, sc, alloc, variant);
      }
      rows.push_back(util::JsonValue(std::move(row)));
    }
    doc["rows"] = util::JsonValue(std::move(rows));
  }
  {
    util::JsonObject summary;
    summary["gray_over_crash_s1_44"] = bw("1", "(4,4)", "gray") / bw("1", "(4,4)", "crash");
    summary["gray_over_crash_s2_44"] = bw("2", "(4,4)", "gray") / bw("2", "(4,4)", "crash");
    summary["mitigated_over_healthy_s1_44"] =
        bw("1", "(4,4)", "mitigated") / bw("1", "(4,4)", "healthy");
    summary["mitigated_over_undetected_stutter"] =
        metric("bandwidth_mibps", "detect", "1", "(4,4)", "mitigated") /
        metric("bandwidth_mibps", "detect", "1", "(4,4)", "undetected");
    summary["detect_quarantines"] =
        metric("gray_quarantines", "detect", "1", "(4,4)", "monitored");
    doc["summary"] = util::JsonValue(std::move(summary));
  }
  {
    const char* out = std::getenv("BEESIM_BENCH_JSON");
    const std::string path =
        out != nullptr && *out != '\0' ? out : "BENCH_failslow.json";
    std::ofstream file(path);
    file << util::JsonValue(std::move(doc)).dump(2) << "\n";
    std::printf("failslow numbers written to %s\n", path.c_str());
  }
  return bench::finish(checks);
}
