// Micro-benchmarks of the simulator core (google-benchmark): the max-min
// solver at various flow populations, the event queue, and one full IOR run
// per scenario -- the numbers that bound how fast campaigns execute.
#include <benchmark/benchmark.h>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "harness/run.hpp"
#include "ior/runner.hpp"
#include "sim/maxmin.hpp"
#include "sim/simulator.hpp"
#include "topology/plafrim.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace beesim;
using namespace beesim::util::literals;

void BM_MaxMinSolver(benchmark::State& state) {
  const auto nFlows = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<sim::SolverResource> resources(24);
  for (auto& r : resources) r.capacity = rng.uniform(100.0, 2000.0);
  std::vector<sim::SolverFlow> flows(nFlows);
  for (auto& f : flows) {
    for (const auto r : rng.sampleWithoutReplacement(resources.size(), 5)) {
      f.resources.push_back(static_cast<std::uint32_t>(r));
    }
    f.weight = rng.uniform(0.5, 4.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::solveMaxMin(resources, flows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nFlows));
}
BENCHMARK(BM_MaxMinSolver)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048);

void BM_EventQueue(benchmark::State& state) {
  const auto nEvents = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::size_t i = 0; i < nEvents; ++i) {
      simulator.schedule(rng.uniform(0.0, 1000.0), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nEvents));
}
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(16384);

void BM_FullIorRun(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    harness::RunConfig config;
    config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, nodes);
    config.fs.defaultStripe.stripeCount = 8;
    config.job = ior::IorJob::onFirstNodes(nodes, 8);
    config.ior.blockSize = ior::blockSizeForTotal(32_GiB, config.job.ranks());
    benchmark::DoNotOptimize(harness::runOnce(config, 42));
  }
}
BENCHMARK(BM_FullIorRun)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_StripeByteMath(benchmark::State& state) {
  const beegfs::StripePattern pattern({0, 1, 2, 3, 4, 5, 6, 7}, 512_KiB);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto offset = static_cast<util::Bytes>(rng.uniformInt(0, 1LL << 35));
    benchmark::DoNotOptimize(pattern.bytesPerTarget(offset, 4_GiB));
  }
}
BENCHMARK(BM_StripeByteMath);

}  // namespace

BENCHMARK_MAIN();
