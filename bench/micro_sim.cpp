// Micro-benchmarks of the simulator core (google-benchmark): the max-min
// solver at various flow populations, the event queue, and one full IOR run
// per scenario -- the numbers that bound how fast campaigns execute.
//
// Before the google-benchmark suite runs, main() measures the fluid-core
// resolve throughput -- the pre-change baseline (full allocating rebuild +
// global solve per event) against the incremental component-aware resolver
// -- across flow-count sweeps and component shapes, and writes the numbers
// to BENCH_fluid_core.json (override the path with BEESIM_BENCH_JSON).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string_view>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "harness/run.hpp"
#include "ior/runner.hpp"
#include "sim/fluid.hpp"
#include "sim/maxmin.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "topology/plafrim.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace beesim;
using namespace beesim::util::literals;

void BM_MaxMinSolver(benchmark::State& state) {
  const auto nFlows = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<sim::SolverResource> resources(24);
  for (auto& r : resources) r.capacity = rng.uniform(100.0, 2000.0);
  std::vector<sim::SolverFlow> flows(nFlows);
  for (auto& f : flows) {
    for (const auto r : rng.sampleWithoutReplacement(resources.size(), 5)) {
      f.resources.push_back(static_cast<std::uint32_t>(r));
    }
    f.weight = rng.uniform(0.5, 4.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::solveMaxMin(resources, flows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nFlows));
}
BENCHMARK(BM_MaxMinSolver)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048);

void BM_EventQueue(benchmark::State& state) {
  const auto nEvents = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::size_t i = 0; i < nEvents; ++i) {
      simulator.schedule(rng.uniform(0.0, 1000.0), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nEvents));
}
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(16384);

void BM_FullIorRun(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    harness::RunConfig config;
    config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, nodes);
    config.fs.defaultStripe.stripeCount = 8;
    config.job = ior::IorJob::onFirstNodes(nodes, 8);
    config.ior.blockSize = ior::blockSizeForTotal(32_GiB, config.job.ranks());
    benchmark::DoNotOptimize(harness::runOnce(config, 42));
  }
}
BENCHMARK(BM_FullIorRun)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_StripeByteMath(benchmark::State& state) {
  const beegfs::StripePattern pattern({0, 1, 2, 3, 4, 5, 6, 7}, 512_KiB);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto offset = static_cast<util::Bytes>(rng.uniformInt(0, 1LL << 35));
    benchmark::DoNotOptimize(pattern.bytesPerTarget(offset, 4_GiB));
  }
}
BENCHMARK(BM_StripeByteMath);

// --- Fluid-core resolve throughput: baseline vs incremental ------------

/// A fixed multi-app max-min problem in both the legacy (allocating) input
/// form and the flat CSR form the workspace consumes.
struct CoreScenario {
  std::vector<sim::SolverResource> resources;
  std::vector<sim::SolverFlow> flows;

  std::vector<double> capacity;
  std::vector<std::uint32_t> adjacency;
  std::vector<std::uint32_t> adjOffset;
  std::vector<std::uint32_t> adjLen;
  std::vector<double> weight;
  std::vector<double> rateCap;
  /// Flow slots per app == per connected component when targets are
  /// disjoint; with shared targets every app touches every resource.
  std::vector<std::vector<std::uint32_t>> appFlows;
};

CoreScenario makeCoreScenario(std::size_t nApps, std::size_t flowsPerApp,
                              std::size_t resourcesPerApp, bool shared,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  CoreScenario s;
  const std::size_t nRes = shared ? resourcesPerApp : nApps * resourcesPerApp;
  s.resources.resize(nRes);
  s.capacity.resize(nRes);
  for (std::size_t r = 0; r < nRes; ++r) {
    s.capacity[r] = rng.uniform(100.0, 2000.0);
    s.resources[r].capacity = s.capacity[r];
  }
  const std::size_t nFlows = nApps * flowsPerApp;
  s.flows.resize(nFlows);
  s.adjOffset.resize(nFlows);
  s.adjLen.resize(nFlows);
  s.weight.resize(nFlows);
  s.rateCap.resize(nFlows);
  s.appFlows.resize(nApps);
  const std::size_t pathLen = std::min<std::size_t>(3, resourcesPerApp);
  for (std::size_t a = 0; a < nApps; ++a) {
    for (std::size_t i = 0; i < flowsPerApp; ++i) {
      const auto f = static_cast<std::uint32_t>(a * flowsPerApp + i);
      s.adjOffset[f] = static_cast<std::uint32_t>(s.adjacency.size());
      s.adjLen[f] = static_cast<std::uint32_t>(pathLen);
      for (const auto r : rng.sampleWithoutReplacement(resourcesPerApp, pathLen)) {
        const auto res = static_cast<std::uint32_t>(shared ? r : a * resourcesPerApp + r);
        s.adjacency.push_back(res);
        s.flows[f].resources.push_back(res);
      }
      s.weight[f] = rng.uniform(0.5, 4.0);
      s.flows[f].weight = s.weight[f];
      s.appFlows[a].push_back(f);
    }
  }
  return s;
}

struct Measurement {
  double nsPerResolve = 0.0;
  double iterationsPerResolve = 0.0;
};

/// Time `resolve(event)` until enough wall-clock has elapsed; `resolve`
/// returns the solver iteration count of that event.
template <typename Resolve>
Measurement measureResolves(Resolve&& resolve) {
  using Clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < 10; ++i) (void)resolve(i);  // warm-up
  std::size_t events = 0;
  std::size_t iterations = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.25 || events < 100) {
    iterations += resolve(events);
    ++events;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  Measurement m;
  m.nsPerResolve = elapsed * 1e9 / static_cast<double>(events);
  m.iterationsPerResolve = static_cast<double>(iterations) / static_cast<double>(events);
  return m;
}

util::JsonValue benchFluidCoreScenario(const std::string& name, std::size_t nApps,
                                       std::size_t flowsPerApp,
                                       std::size_t resourcesPerApp, bool shared) {
  const auto scenario =
      makeCoreScenario(nApps, flowsPerApp, resourcesPerApp, shared, 20220714);

  // Baseline: what every flow event cost before the incremental resolver --
  // rebuild the solver input (per-flow resource vectors and all) and solve
  // the *world*, allocations included.
  const auto baseline = measureResolves([&](std::size_t) {
    std::vector<sim::SolverFlow> flows(scenario.flows.size());
    for (std::size_t f = 0; f < flows.size(); ++f) {
      flows[f].resources.reserve(scenario.flows[f].resources.size());
      for (const auto r : scenario.flows[f].resources) flows[f].resources.push_back(r);
      flows[f].weight = scenario.flows[f].weight;
      flows[f].rateCap = scenario.flows[f].rateCap;
    }
    return sim::solveMaxMin(scenario.resources, flows).iterations;
  });

  // Incremental: a flow event dirties one app's component and re-solves only
  // that subset through the persistent workspace (zero allocations).
  const sim::SolverView view{scenario.capacity, scenario.adjacency, scenario.adjOffset,
                             scenario.adjLen,   scenario.weight,    scenario.rateCap};
  sim::SolverWorkspace workspace;
  std::vector<double> rates(scenario.weight.size(), 0.0);
  const auto incremental = measureResolves([&](std::size_t event) {
    return workspace.solveSubset(view, scenario.appFlows[event % nApps], rates);
  });

  util::JsonObject entry;
  entry["name"] = name;
  entry["shape"] = shared ? "shared" : "disjoint";
  entry["apps"] = static_cast<double>(nApps);
  entry["flows"] = static_cast<double>(nApps * flowsPerApp);
  entry["resources"] = static_cast<double>(scenario.capacity.size());
  entry["baseline_ns_per_resolve"] = baseline.nsPerResolve;
  entry["incremental_ns_per_resolve"] = incremental.nsPerResolve;
  entry["baseline_resolves_per_s"] = 1e9 / baseline.nsPerResolve;
  entry["incremental_resolves_per_s"] = 1e9 / incremental.nsPerResolve;
  entry["baseline_solver_iterations"] = baseline.iterationsPerResolve;
  entry["incremental_solver_iterations"] = incremental.iterationsPerResolve;
  entry["speedup"] = baseline.nsPerResolve / incremental.nsPerResolve;
  return util::JsonValue(std::move(entry));
}

/// End-to-end FluidSimulator numbers (event loop + capacity evaluation +
/// component bookkeeping included), for context next to the solver-level
/// comparison.
util::JsonValue benchFluidSimulator(bool disjoint) {
  sim::FluidSimulator fluid;
  fluid.setResolveInterval(0.01);
  constexpr std::size_t kApps = 2;
  constexpr std::size_t kResPerApp = 8;
  constexpr std::size_t kFlowsPerApp = 64;
  std::vector<sim::ResourceIndex> links;
  const std::size_t nRes = disjoint ? kApps * kResPerApp : kResPerApp;
  for (std::size_t r = 0; r < nRes; ++r) {
    links.push_back(fluid.addResource(sim::ResourceSpec{
        "link" + std::to_string(r), [](const sim::ResourceLoad& load) {
          return 500.0 + 100.0 * std::sin(load.time);
        }}));
  }
  util::Rng rng(99);
  for (std::size_t a = 0; a < kApps; ++a) {
    for (std::size_t i = 0; i < kFlowsPerApp; ++i) {
      sim::FlowSpec spec;
      for (const auto r : rng.sampleWithoutReplacement(kResPerApp, 3)) {
        spec.path.push_back(links[disjoint ? a * kResPerApp + r : r]);
      }
      spec.bytes = 1_TiB;  // nothing completes inside the window
      spec.queueWeight = rng.uniform(0.5, 4.0);
      fluid.startFlow(std::move(spec));
    }
  }
  fluid.engine().runUntil(1.0);  // warm up
  const auto resolves0 = fluid.resolveCount();
  const auto iterations0 = fluid.solverIterations();
  const auto start = std::chrono::steady_clock::now();
  fluid.engine().runUntil(21.0);  // ~2000 periodic resolves
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const auto resolves = fluid.resolveCount() - resolves0;
  const auto iterations = fluid.solverIterations() - iterations0;

  util::JsonObject entry;
  entry["name"] = std::string("fluid_sim_") + (disjoint ? "disjoint" : "shared");
  entry["shape"] = disjoint ? "disjoint" : "shared";
  entry["apps"] = static_cast<double>(kApps);
  entry["flows"] = static_cast<double>(kApps * kFlowsPerApp);
  entry["resources"] = static_cast<double>(nRes);
  entry["ns_per_resolve"] = elapsed * 1e9 / static_cast<double>(resolves);
  entry["resolves_per_s"] = static_cast<double>(resolves) / elapsed;
  entry["solver_iterations_per_resolve"] =
      static_cast<double>(iterations) / static_cast<double>(resolves);
  return util::JsonValue(std::move(entry));
}

void writeFluidCoreBench() {
  util::JsonArray scenarios;
  double disjointHeadline = 0.0;
  double sharedHeadline = 0.0;
  for (const std::size_t flowsPerApp : {32u, 128u, 512u}) {
    for (const bool shared : {false, true}) {
      const std::string name = std::string(shared ? "shared" : "disjoint") +
                               "_two_app_" + std::to_string(2 * flowsPerApp) + "f";
      auto entry = benchFluidCoreScenario(name, 2, flowsPerApp, 16, shared);
      const double speedup = entry.at("speedup").asNumber();
      if (flowsPerApp == 128) (shared ? sharedHeadline : disjointHeadline) = speedup;
      scenarios.push_back(std::move(entry));
    }
  }
  scenarios.push_back(benchFluidSimulator(true));
  scenarios.push_back(benchFluidSimulator(false));

  util::JsonObject headline;
  headline["disjoint_two_app_speedup"] = disjointHeadline;
  headline["shared_two_app_speedup"] = sharedHeadline;
  util::JsonObject doc;
  doc["benchmark"] = "fluid_core";
  doc["scenarios"] = util::JsonValue(std::move(scenarios));
  doc["headline"] = util::JsonValue(std::move(headline));

  const char* out = std::getenv("BEESIM_BENCH_JSON");
  const std::string path = out != nullptr && *out != '\0' ? out : "BENCH_fluid_core.json";
  std::ofstream file(path);
  file << util::JsonValue(std::move(doc)).dump(2) << "\n";
  std::cout << "fluid-core resolve throughput written to " << path
            << " (disjoint two-app speedup " << disjointHeadline
            << "x, shared " << sharedHeadline << "x)\n";
}

// --- Cluster-scale fluid bench: SoA solver, ε-deferral, trace sinks ----
//
// The scale campaign behind results/BENCH_fluid_scale.json.  Three parts:
//
//   * a 10k-flow / 1k-resource wobbling-capacity scenario timed on three
//     solver legs -- the scalar reference walk (the pre-SoA incremental
//     path), the SoA fast path at ε=0, and SoA with ε-bounded deferral;
//   * the same scenario untraced vs FlowTracer vs RingTraceSink, measuring
//     tracing overhead as a percentage of untraced wall time;
//   * a paper-topology campaign scaled ~1000x in rank count (the paper's
//     Scenario-2 jobs are 4 nodes x 8 ppn = 32 ranks), run end to end
//     through runOnce at ε=0 and ε>0.
//
// Modes (environment-selected so ctest/CI reuse one binary):
//   BEESIM_BENCH_SMOKE=1   tiny sizes, seconds -- the tier-1 ctest smoke;
//   BEESIM_BENCH_QUICK=1   reduced windows -- the CI perf-regression guard;
//   (neither)              full sizes, written to BENCH_fluid_scale.json
//                          (override with BEESIM_SCALE_JSON).
//
// The guard (BEESIM_BENCH_BASELINE=<committed json>) compares *relative*
// metrics -- the ε-leg's speedup over the in-process reference leg and the
// ring sink's overhead percentage -- so it is meaningful across hosts of
// different absolute speed.  It fails (exit 1) when the current speedup
// falls more than BEESIM_BENCH_GUARD_PCT (default 20) percent below the
// committed one, or when ring overhead exceeds the 10% acceptance bound.

bool envFlag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::string_view(v) != "0";
}

struct ScaleShape {
  std::size_t apps = 0;
  std::size_t resPerApp = 0;
  std::size_t flowsPerApp = 0;
  double minWallSeconds = 0.0;  // repeat the window until this much elapsed
};

struct ScaleLeg {
  double resolvesPerS = 0.0;
  double eventsPerS = 0.0;
  double wallPerSimSecond = 0.0;  // host seconds per simulated second
  std::size_t deferred = 0;
};

/// Build the wobbling-capacity scenario and run it for `simWindow` virtual
/// seconds per repetition until `minWall` host seconds elapsed.  Per-app
/// resources are disjoint, so the solver sees `apps` independent components;
/// every capacity wobbles each resolve tick, so at ε=0 every component
/// re-solves on every tick (the worst case the ε bound exists to avoid).
template <typename Attach>
ScaleLeg runScaleLeg(const ScaleShape& shape, bool reference, double epsilon,
                     double simWindow, Attach&& attach) {
  sim::FluidSimulator fluid;
  fluid.setReferenceSolver(reference);
  if (epsilon > 0.0) fluid.setSolverEpsilon(epsilon);
  fluid.setResolveInterval(0.01);
  std::vector<sim::ResourceIndex> links;
  const std::size_t nRes = shape.apps * shape.resPerApp;
  links.reserve(nRes);
  for (std::size_t r = 0; r < nRes; ++r) {
    const double phase = 0.1 * static_cast<double>(r);
    links.push_back(fluid.addResource(sim::ResourceSpec{
        "link" + std::to_string(r), [phase](const sim::ResourceLoad& load) {
          return 500.0 + 2.0 * std::sin(3.0 * load.time + phase);
        }}));
  }
  util::Rng rng(20220714);
  const std::size_t pathLen = std::min<std::size_t>(3, shape.resPerApp);
  for (std::size_t a = 0; a < shape.apps; ++a) {
    for (std::size_t i = 0; i < shape.flowsPerApp; ++i) {
      sim::FlowSpec spec;
      for (const auto r : rng.sampleWithoutReplacement(shape.resPerApp, pathLen)) {
        spec.path.push_back(links[a * shape.resPerApp + r]);
      }
      spec.bytes = 1_TiB;  // nothing completes inside the window
      spec.queueWeight = rng.uniform(0.5, 4.0);
      fluid.startFlow(std::move(spec));
    }
  }
  auto hold = attach(fluid);  // optional observer, kept alive for the run
  (void)hold;
  fluid.engine().runUntil(0.5);  // warm-up: pools sized, first exact solves
  const auto resolves0 = fluid.resolveCount();
  const auto deferred0 = fluid.deferredResolves();
  std::size_t events = 0;
  double simEnd = 0.5;
  const auto start = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  do {
    simEnd += simWindow;
    events += fluid.engine().runUntil(simEnd);
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                  .count();
  } while (elapsed < shape.minWallSeconds);
  ScaleLeg leg;
  leg.resolvesPerS = static_cast<double>(fluid.resolveCount() - resolves0) / elapsed;
  leg.eventsPerS = static_cast<double>(events) / elapsed;
  leg.wallPerSimSecond = elapsed / (simEnd - 0.5);
  leg.deferred = fluid.deferredResolves() - deferred0;
  return leg;
}

struct NoObserver {
  int operator()(sim::FluidSimulator&) const { return 0; }
};

/// Scale-bench repetitions per leg (set by mode).  Each leg keeps its best
/// (lowest wall-per-sim-second) repetition: transient noise -- scheduler
/// preemption, frequency ramps -- only ever makes a run *slower*, so the
/// minimum is the stable estimator the CI guard needs.
std::size_t gScaleRepeats = 1;

/// Run a set of legs `gScaleRepeats` times round-robin and keep each leg's
/// best repetition.  Interleaving matters: running all repetitions of one leg
/// back to back would let slow drift (turbo decay, thermal throttling) bias
/// whichever leg happens to run last, which shows up as phantom overhead in
/// the traced-vs-untraced comparison.
std::vector<ScaleLeg> bestScaleLegs(
    const std::vector<std::function<ScaleLeg()>>& legs) {
  std::vector<ScaleLeg> best;
  best.reserve(legs.size());
  for (const auto& leg : legs) best.push_back(leg());
  for (std::size_t i = 1; i < gScaleRepeats; ++i) {
    for (std::size_t j = 0; j < legs.size(); ++j) {
      const ScaleLeg rep = legs[j]();
      if (rep.wallPerSimSecond < best[j].wallPerSimSecond) best[j] = rep;
    }
  }
  return best;
}

util::JsonValue benchScaleSolver(const ScaleShape& shape, double epsilon,
                                 double simWindow, double* speedupOut) {
  const auto legs = bestScaleLegs({
      [&] { return runScaleLeg(shape, true, 0.0, simWindow, NoObserver{}); },
      [&] { return runScaleLeg(shape, false, 0.0, simWindow, NoObserver{}); },
      [&] { return runScaleLeg(shape, false, epsilon, simWindow, NoObserver{}); },
  });
  const ScaleLeg& reference = legs[0];
  const ScaleLeg& soa = legs[1];
  const ScaleLeg& eps = legs[2];

  util::JsonObject entry;
  entry["name"] = "scale_" + std::to_string(shape.apps * shape.flowsPerApp) + "f_" +
                  std::to_string(shape.apps * shape.resPerApp) + "r";
  entry["flows"] = static_cast<double>(shape.apps * shape.flowsPerApp);
  entry["resources"] = static_cast<double>(shape.apps * shape.resPerApp);
  entry["components"] = static_cast<double>(shape.apps);
  entry["epsilon_mibps"] = epsilon;
  entry["reference_resolves_per_s"] = reference.resolvesPerS;
  entry["reference_events_per_s"] = reference.eventsPerS;
  entry["soa_resolves_per_s"] = soa.resolvesPerS;
  entry["soa_events_per_s"] = soa.eventsPerS;
  entry["soa_speedup"] = reference.wallPerSimSecond / soa.wallPerSimSecond;
  entry["eps_resolves_per_s"] = eps.resolvesPerS;
  entry["eps_events_per_s"] = eps.eventsPerS;
  entry["eps_deferred_component_solves"] = static_cast<double>(eps.deferred);
  const double speedup = reference.wallPerSimSecond / eps.wallPerSimSecond;
  entry["eps_speedup"] = speedup;
  if (speedupOut != nullptr) *speedupOut = speedup;
  return util::JsonValue(std::move(entry));
}

util::JsonValue benchScaleTracing(const ScaleShape& shape, double simWindow,
                                  double* ringOverheadOut) {
  // All three legs run the exact (ε=0, SoA) path; only the attached observer
  // differs, so the wall-time delta is tracing cost alone.
  std::uint64_t ringRecorded = 0;
  const auto legs = bestScaleLegs({
      [&] { return runScaleLeg(shape, false, 0.0, simWindow, NoObserver{}); },
      [&] {
        return runScaleLeg(shape, false, 0.0, simWindow, [](sim::FluidSimulator& f) {
          return std::make_unique<sim::FlowTracer>(f);
        });
      },
      [&] {
        return runScaleLeg(shape, false, 0.0, simWindow, [&](sim::FluidSimulator& f) {
          struct Hold {
            sim::RingTraceSink sink;
            std::uint64_t* recorded;
            Hold(sim::FluidSimulator& fluid, std::uint64_t* out)
                : sink(fluid, 1u << 20), recorded(out) {}
            ~Hold() { *recorded = sink.recorded(); }
          };
          return std::make_unique<Hold>(f, &ringRecorded);
        });
      },
  });
  const ScaleLeg& untraced = legs[0];
  const ScaleLeg& fullTraced = legs[1];
  const ScaleLeg& ringTraced = legs[2];

  const auto overheadPct = [&](const ScaleLeg& leg) {
    return 100.0 * (leg.wallPerSimSecond - untraced.wallPerSimSecond) /
           untraced.wallPerSimSecond;
  };
  util::JsonObject entry;
  entry["flows"] = static_cast<double>(shape.apps * shape.flowsPerApp);
  entry["resources"] = static_cast<double>(shape.apps * shape.resPerApp);
  entry["untraced_events_per_s"] = untraced.eventsPerS;
  entry["full_tracer_overhead_pct"] = overheadPct(fullTraced);
  entry["ring_sink_overhead_pct"] = overheadPct(ringTraced);
  entry["ring_records"] = static_cast<double>(ringRecorded);
  if (ringOverheadOut != nullptr) *ringOverheadOut = overheadPct(ringTraced);
  return util::JsonValue(std::move(entry));
}

util::JsonValue benchScaleCampaign(std::size_t nodes, double epsilon) {
  // The paper's Scenario-2 jobs are 4 nodes x 8 ppn; `nodes` scales that
  // topology up while keeping the per-rank working set small enough that the
  // leg finishes in seconds.  runOnce builds the whole stack (deployment,
  // filesystem, striping, IOR), so this measures the fluid core where it
  // actually lives.
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, nodes);
  config.fs.defaultStripe.stripeCount = 8;
  config.job = ior::IorJob::onFirstNodes(nodes, 8);
  config.ior.blockSize = ior::blockSizeForTotal(
      static_cast<util::Bytes>(config.job.ranks()) * 4_MiB, config.job.ranks());
  const auto exact = harness::runOnce(config, 42);
  config.solverEpsilon = epsilon;
  const auto bounded = harness::runOnce(config, 42);

  util::JsonObject entry;
  entry["name"] = "paper_topology_x" + std::to_string(config.job.ranks() / 32);
  entry["nodes"] = static_cast<double>(nodes);
  entry["ranks"] = static_cast<double>(config.job.ranks());
  entry["epsilon_mibps"] = epsilon;
  entry["exact_wall_s"] = exact.wallSeconds;
  entry["exact_resolves"] = static_cast<double>(exact.resolves);
  entry["exact_bandwidth_mibps"] = exact.ior.bandwidth;
  entry["eps_wall_s"] = bounded.wallSeconds;
  entry["eps_resolves"] = static_cast<double>(bounded.resolves);
  entry["eps_deferred"] = static_cast<double>(bounded.deferredResolves);
  entry["eps_bandwidth_mibps"] = bounded.ior.bandwidth;
  entry["eps_bandwidth_rel_err"] =
      exact.ior.bandwidth > 0.0
          ? std::abs(bounded.ior.bandwidth - exact.ior.bandwidth) / exact.ior.bandwidth
          : 0.0;
  return util::JsonValue(std::move(entry));
}

int runScaleBench(bool smoke, bool quick) {
  constexpr double kEpsilon = 25.0;  // MiB/s; capacities wobble +-2 at ~500
  ScaleShape shape;
  double simWindow = 1.0;
  std::size_t campaignNodes = 4096;  // 32768 ranks = 1024x the paper's 32
  if (smoke) {
    shape = ScaleShape{4, 8, 25, 0.0};
    simWindow = 0.2;
    campaignNodes = 32;
    gScaleRepeats = 1;
  } else if (quick) {
    shape = ScaleShape{100, 10, 100, 0.4};
    simWindow = 0.5;
    campaignNodes = 512;
    gScaleRepeats = 5;
  } else {
    shape = ScaleShape{100, 10, 100, 0.8};
    gScaleRepeats = 5;
  }

  double scaleSpeedup = 0.0;
  double ringOverheadPct = 0.0;
  util::JsonArray scenarios;
  scenarios.push_back(benchScaleSolver(shape, kEpsilon, simWindow, &scaleSpeedup));
  util::JsonValue tracing = benchScaleTracing(shape, simWindow, &ringOverheadPct);
  util::JsonValue campaign = benchScaleCampaign(campaignNodes, kEpsilon);

  util::JsonObject headline;
  headline["scale_speedup"] = scaleSpeedup;
  headline["ring_overhead_pct"] = ringOverheadPct;
  util::JsonObject doc;
  doc["benchmark"] = "fluid_scale";
  doc["mode"] = smoke ? "smoke" : quick ? "quick" : "full";
  doc["scenarios"] = util::JsonValue(std::move(scenarios));
  doc["tracing"] = std::move(tracing);
  doc["campaign"] = std::move(campaign);
  doc["headline"] = util::JsonValue(std::move(headline));

  const char* outEnv = std::getenv("BEESIM_SCALE_JSON");
  const std::string path =
      outEnv != nullptr && *outEnv != '\0'
          ? outEnv
          : (smoke || quick ? std::string() : std::string("BENCH_fluid_scale.json"));
  if (!path.empty()) {
    std::ofstream file(path);
    file << util::JsonValue(doc).dump(2) << "\n";
    std::cout << "fluid-scale campaign written to " << path << "\n";
  }
  std::cout << "fluid-scale: eps-leg speedup " << scaleSpeedup
            << "x over reference, ring tracing overhead " << ringOverheadPct
            << "% (full tracer "
            << util::JsonValue(doc).at("tracing").at("full_tracer_overhead_pct").asNumber()
            << "%)\n";

  if (smoke) {
    // ctest smoke: the numbers are too small to threshold, but the machinery
    // must hold together -- deferral engaged and the ring recorded events.
    const auto& s = util::JsonValue(doc).at("scenarios").asArray().front();
    if (s.at("eps_deferred_component_solves").asNumber() <= 0.0) {
      std::cerr << "scale smoke: epsilon deferral never engaged\n";
      return 1;
    }
    if (util::JsonValue(doc).at("tracing").at("ring_records").asNumber() <= 0.0) {
      std::cerr << "scale smoke: ring sink recorded nothing\n";
      return 1;
    }
    return 0;
  }

  // Perf-regression guard against a committed baseline.
  const char* baselinePath = std::getenv("BEESIM_BENCH_BASELINE");
  if (baselinePath != nullptr && *baselinePath != '\0') {
    std::ifstream in(baselinePath);
    if (!in) {
      std::cerr << "guard: cannot read baseline " << baselinePath << "\n";
      return 1;
    }
    std::ostringstream text;
    text << in.rdbuf();
    const auto baseline = util::parseJson(text.str());
    const double baseSpeedup = baseline.at("headline").at("scale_speedup").asNumber();
    const char* pctEnv = std::getenv("BEESIM_BENCH_GUARD_PCT");
    const double pct =
        pctEnv != nullptr && *pctEnv != '\0' ? std::atof(pctEnv) : 20.0;
    const double floor = baseSpeedup * (1.0 - pct / 100.0);
    bool ok = true;
    if (scaleSpeedup < floor) {
      std::cerr << "guard FAIL: eps-leg speedup " << scaleSpeedup << "x fell below "
                << floor << "x (baseline " << baseSpeedup << "x, tolerance " << pct
                << "%)\n";
      ok = false;
    }
    if (ringOverheadPct > 10.0) {
      std::cerr << "guard FAIL: ring tracing overhead " << ringOverheadPct
                << "% exceeds the 10% bound\n";
      ok = false;
    }
    if (ok) {
      std::cout << "guard PASS: speedup " << scaleSpeedup << "x (baseline "
                << baseSpeedup << "x, floor " << floor << "x), ring overhead "
                << ringOverheadPct << "% (bound 10%)\n";
    }
    return ok ? 0 : 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = envFlag("BEESIM_BENCH_SMOKE");
  const bool quick = envFlag("BEESIM_BENCH_QUICK");
  if (smoke || quick) return runScaleBench(smoke, quick);
  writeFluidCoreBench();
  const int scaleRc = runScaleBench(false, false);
  if (scaleRc != 0) return scaleRc;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
