// Micro-benchmarks of the simulator core (google-benchmark): the max-min
// solver at various flow populations, the event queue, and one full IOR run
// per scenario -- the numbers that bound how fast campaigns execute.
//
// Before the google-benchmark suite runs, main() measures the fluid-core
// resolve throughput -- the pre-change baseline (full allocating rebuild +
// global solve per event) against the incremental component-aware resolver
// -- across flow-count sweeps and component shapes, and writes the numbers
// to BENCH_fluid_core.json (override the path with BEESIM_BENCH_JSON).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "beegfs/deployment.hpp"
#include "beegfs/filesystem.hpp"
#include "harness/run.hpp"
#include "ior/runner.hpp"
#include "sim/fluid.hpp"
#include "sim/maxmin.hpp"
#include "sim/simulator.hpp"
#include "topology/plafrim.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace {

using namespace beesim;
using namespace beesim::util::literals;

void BM_MaxMinSolver(benchmark::State& state) {
  const auto nFlows = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<sim::SolverResource> resources(24);
  for (auto& r : resources) r.capacity = rng.uniform(100.0, 2000.0);
  std::vector<sim::SolverFlow> flows(nFlows);
  for (auto& f : flows) {
    for (const auto r : rng.sampleWithoutReplacement(resources.size(), 5)) {
      f.resources.push_back(static_cast<std::uint32_t>(r));
    }
    f.weight = rng.uniform(0.5, 4.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::solveMaxMin(resources, flows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nFlows));
}
BENCHMARK(BM_MaxMinSolver)->Arg(64)->Arg(256)->Arg(1024)->Arg(2048);

void BM_EventQueue(benchmark::State& state) {
  const auto nEvents = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    sim::Simulator simulator;
    for (std::size_t i = 0; i < nEvents; ++i) {
      simulator.schedule(rng.uniform(0.0, 1000.0), [] {});
    }
    benchmark::DoNotOptimize(simulator.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(nEvents));
}
BENCHMARK(BM_EventQueue)->Arg(1024)->Arg(16384);

void BM_FullIorRun(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    harness::RunConfig config;
    config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, nodes);
    config.fs.defaultStripe.stripeCount = 8;
    config.job = ior::IorJob::onFirstNodes(nodes, 8);
    config.ior.blockSize = ior::blockSizeForTotal(32_GiB, config.job.ranks());
    benchmark::DoNotOptimize(harness::runOnce(config, 42));
  }
}
BENCHMARK(BM_FullIorRun)->Arg(4)->Arg(16)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_StripeByteMath(benchmark::State& state) {
  const beegfs::StripePattern pattern({0, 1, 2, 3, 4, 5, 6, 7}, 512_KiB);
  util::Rng rng(3);
  for (auto _ : state) {
    const auto offset = static_cast<util::Bytes>(rng.uniformInt(0, 1LL << 35));
    benchmark::DoNotOptimize(pattern.bytesPerTarget(offset, 4_GiB));
  }
}
BENCHMARK(BM_StripeByteMath);

// --- Fluid-core resolve throughput: baseline vs incremental ------------

/// A fixed multi-app max-min problem in both the legacy (allocating) input
/// form and the flat CSR form the workspace consumes.
struct CoreScenario {
  std::vector<sim::SolverResource> resources;
  std::vector<sim::SolverFlow> flows;

  std::vector<double> capacity;
  std::vector<std::uint32_t> adjacency;
  std::vector<std::uint32_t> adjOffset;
  std::vector<std::uint32_t> adjLen;
  std::vector<double> weight;
  std::vector<double> rateCap;
  /// Flow slots per app == per connected component when targets are
  /// disjoint; with shared targets every app touches every resource.
  std::vector<std::vector<std::uint32_t>> appFlows;
};

CoreScenario makeCoreScenario(std::size_t nApps, std::size_t flowsPerApp,
                              std::size_t resourcesPerApp, bool shared,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  CoreScenario s;
  const std::size_t nRes = shared ? resourcesPerApp : nApps * resourcesPerApp;
  s.resources.resize(nRes);
  s.capacity.resize(nRes);
  for (std::size_t r = 0; r < nRes; ++r) {
    s.capacity[r] = rng.uniform(100.0, 2000.0);
    s.resources[r].capacity = s.capacity[r];
  }
  const std::size_t nFlows = nApps * flowsPerApp;
  s.flows.resize(nFlows);
  s.adjOffset.resize(nFlows);
  s.adjLen.resize(nFlows);
  s.weight.resize(nFlows);
  s.rateCap.resize(nFlows);
  s.appFlows.resize(nApps);
  const std::size_t pathLen = std::min<std::size_t>(3, resourcesPerApp);
  for (std::size_t a = 0; a < nApps; ++a) {
    for (std::size_t i = 0; i < flowsPerApp; ++i) {
      const auto f = static_cast<std::uint32_t>(a * flowsPerApp + i);
      s.adjOffset[f] = static_cast<std::uint32_t>(s.adjacency.size());
      s.adjLen[f] = static_cast<std::uint32_t>(pathLen);
      for (const auto r : rng.sampleWithoutReplacement(resourcesPerApp, pathLen)) {
        const auto res = static_cast<std::uint32_t>(shared ? r : a * resourcesPerApp + r);
        s.adjacency.push_back(res);
        s.flows[f].resources.push_back(res);
      }
      s.weight[f] = rng.uniform(0.5, 4.0);
      s.flows[f].weight = s.weight[f];
      s.appFlows[a].push_back(f);
    }
  }
  return s;
}

struct Measurement {
  double nsPerResolve = 0.0;
  double iterationsPerResolve = 0.0;
};

/// Time `resolve(event)` until enough wall-clock has elapsed; `resolve`
/// returns the solver iteration count of that event.
template <typename Resolve>
Measurement measureResolves(Resolve&& resolve) {
  using Clock = std::chrono::steady_clock;
  for (std::size_t i = 0; i < 10; ++i) (void)resolve(i);  // warm-up
  std::size_t events = 0;
  std::size_t iterations = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  while (elapsed < 0.25 || events < 100) {
    iterations += resolve(events);
    ++events;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  Measurement m;
  m.nsPerResolve = elapsed * 1e9 / static_cast<double>(events);
  m.iterationsPerResolve = static_cast<double>(iterations) / static_cast<double>(events);
  return m;
}

util::JsonValue benchFluidCoreScenario(const std::string& name, std::size_t nApps,
                                       std::size_t flowsPerApp,
                                       std::size_t resourcesPerApp, bool shared) {
  const auto scenario =
      makeCoreScenario(nApps, flowsPerApp, resourcesPerApp, shared, 20220714);

  // Baseline: what every flow event cost before the incremental resolver --
  // rebuild the solver input (per-flow resource vectors and all) and solve
  // the *world*, allocations included.
  const auto baseline = measureResolves([&](std::size_t) {
    std::vector<sim::SolverFlow> flows(scenario.flows.size());
    for (std::size_t f = 0; f < flows.size(); ++f) {
      flows[f].resources.reserve(scenario.flows[f].resources.size());
      for (const auto r : scenario.flows[f].resources) flows[f].resources.push_back(r);
      flows[f].weight = scenario.flows[f].weight;
      flows[f].rateCap = scenario.flows[f].rateCap;
    }
    return sim::solveMaxMin(scenario.resources, flows).iterations;
  });

  // Incremental: a flow event dirties one app's component and re-solves only
  // that subset through the persistent workspace (zero allocations).
  const sim::SolverView view{scenario.capacity, scenario.adjacency, scenario.adjOffset,
                             scenario.adjLen,   scenario.weight,    scenario.rateCap};
  sim::SolverWorkspace workspace;
  std::vector<double> rates(scenario.weight.size(), 0.0);
  const auto incremental = measureResolves([&](std::size_t event) {
    return workspace.solveSubset(view, scenario.appFlows[event % nApps], rates);
  });

  util::JsonObject entry;
  entry["name"] = name;
  entry["shape"] = shared ? "shared" : "disjoint";
  entry["apps"] = static_cast<double>(nApps);
  entry["flows"] = static_cast<double>(nApps * flowsPerApp);
  entry["resources"] = static_cast<double>(scenario.capacity.size());
  entry["baseline_ns_per_resolve"] = baseline.nsPerResolve;
  entry["incremental_ns_per_resolve"] = incremental.nsPerResolve;
  entry["baseline_resolves_per_s"] = 1e9 / baseline.nsPerResolve;
  entry["incremental_resolves_per_s"] = 1e9 / incremental.nsPerResolve;
  entry["baseline_solver_iterations"] = baseline.iterationsPerResolve;
  entry["incremental_solver_iterations"] = incremental.iterationsPerResolve;
  entry["speedup"] = baseline.nsPerResolve / incremental.nsPerResolve;
  return util::JsonValue(std::move(entry));
}

/// End-to-end FluidSimulator numbers (event loop + capacity evaluation +
/// component bookkeeping included), for context next to the solver-level
/// comparison.
util::JsonValue benchFluidSimulator(bool disjoint) {
  sim::FluidSimulator fluid;
  fluid.setResolveInterval(0.01);
  constexpr std::size_t kApps = 2;
  constexpr std::size_t kResPerApp = 8;
  constexpr std::size_t kFlowsPerApp = 64;
  std::vector<sim::ResourceIndex> links;
  const std::size_t nRes = disjoint ? kApps * kResPerApp : kResPerApp;
  for (std::size_t r = 0; r < nRes; ++r) {
    links.push_back(fluid.addResource(sim::ResourceSpec{
        "link" + std::to_string(r), [](const sim::ResourceLoad& load) {
          return 500.0 + 100.0 * std::sin(load.time);
        }}));
  }
  util::Rng rng(99);
  for (std::size_t a = 0; a < kApps; ++a) {
    for (std::size_t i = 0; i < kFlowsPerApp; ++i) {
      sim::FlowSpec spec;
      for (const auto r : rng.sampleWithoutReplacement(kResPerApp, 3)) {
        spec.path.push_back(links[disjoint ? a * kResPerApp + r : r]);
      }
      spec.bytes = 1_TiB;  // nothing completes inside the window
      spec.queueWeight = rng.uniform(0.5, 4.0);
      fluid.startFlow(std::move(spec));
    }
  }
  fluid.engine().runUntil(1.0);  // warm up
  const auto resolves0 = fluid.resolveCount();
  const auto iterations0 = fluid.solverIterations();
  const auto start = std::chrono::steady_clock::now();
  fluid.engine().runUntil(21.0);  // ~2000 periodic resolves
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  const auto resolves = fluid.resolveCount() - resolves0;
  const auto iterations = fluid.solverIterations() - iterations0;

  util::JsonObject entry;
  entry["name"] = std::string("fluid_sim_") + (disjoint ? "disjoint" : "shared");
  entry["shape"] = disjoint ? "disjoint" : "shared";
  entry["apps"] = static_cast<double>(kApps);
  entry["flows"] = static_cast<double>(kApps * kFlowsPerApp);
  entry["resources"] = static_cast<double>(nRes);
  entry["ns_per_resolve"] = elapsed * 1e9 / static_cast<double>(resolves);
  entry["resolves_per_s"] = static_cast<double>(resolves) / elapsed;
  entry["solver_iterations_per_resolve"] =
      static_cast<double>(iterations) / static_cast<double>(resolves);
  return util::JsonValue(std::move(entry));
}

void writeFluidCoreBench() {
  util::JsonArray scenarios;
  double disjointHeadline = 0.0;
  double sharedHeadline = 0.0;
  for (const std::size_t flowsPerApp : {32u, 128u, 512u}) {
    for (const bool shared : {false, true}) {
      const std::string name = std::string(shared ? "shared" : "disjoint") +
                               "_two_app_" + std::to_string(2 * flowsPerApp) + "f";
      auto entry = benchFluidCoreScenario(name, 2, flowsPerApp, 16, shared);
      const double speedup = entry.at("speedup").asNumber();
      if (flowsPerApp == 128) (shared ? sharedHeadline : disjointHeadline) = speedup;
      scenarios.push_back(std::move(entry));
    }
  }
  scenarios.push_back(benchFluidSimulator(true));
  scenarios.push_back(benchFluidSimulator(false));

  util::JsonObject headline;
  headline["disjoint_two_app_speedup"] = disjointHeadline;
  headline["shared_two_app_speedup"] = sharedHeadline;
  util::JsonObject doc;
  doc["benchmark"] = "fluid_core";
  doc["scenarios"] = util::JsonValue(std::move(scenarios));
  doc["headline"] = util::JsonValue(std::move(headline));

  const char* out = std::getenv("BEESIM_BENCH_JSON");
  const std::string path = out != nullptr && *out != '\0' ? out : "BENCH_fluid_core.json";
  std::ofstream file(path);
  file << util::JsonValue(std::move(doc)).dump(2) << "\n";
  std::cout << "fluid-core resolve throughput written to " << path
            << " (disjoint two-app speedup " << disjointHeadline
            << "x, shared " << sharedHeadline << "x)\n";
}

}  // namespace

int main(int argc, char** argv) {
  writeFluidCoreBench();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
