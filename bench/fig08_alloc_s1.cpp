// Figure 8: Scenario-1 box-plots of bandwidth grouped by the (min,max) OST
// allocation -- the re-binning of Fig. 6a's clouds that exposes their cause.
//
// Paper findings: performance increases with the min/max balance ratio; the
// absolute number of targets is irrelevant ((0,1) == (0,2) == (0,3), (1,2)
// == (2,4)); balanced placements ((1,1), (3,3), (4,4)) reach the peak; the
// worst case is a single-server placement.
#include <map>

#include "bench/common.hpp"
#include "core/analyzer.hpp"
#include "stats/plot.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  // Cover every allocation class by pinning placements explicitly (the
  // round-robin chooser alone never produces (2,2) or (0,4), as the paper
  // notes), 100 repetitions each under the usual protocol noise.
  const std::map<std::string, std::vector<std::size_t>> placements{
      {"(0,1)", {4}},
      {"(0,2)", {4, 5}},
      {"(0,3)", {4, 5, 6}},
      {"(0,4)", {4, 5, 6, 7}},
      {"(1,1)", {0, 4}},
      {"(1,2)", {0, 4, 5}},
      {"(1,3)", {0, 4, 5, 6}},
      {"(2,2)", {0, 1, 4, 5}},
      {"(2,3)", {0, 1, 4, 5, 6}},
      {"(2,4)", {0, 1, 4, 5, 6, 7}},
      {"(3,3)", {0, 1, 2, 4, 5, 6}},
      {"(3,4)", {0, 1, 2, 4, 5, 6, 7}},
      {"(4,4)", {0, 1, 2, 3, 4, 5, 6, 7}},
  };

  std::vector<harness::CampaignEntry> entries;
  for (const auto& [key, targets] : placements) {
    harness::CampaignEntry entry;
    entry.config = bench::plafrimRun(topo::Scenario::kEthernet10G, 8, 8,
                                     static_cast<unsigned>(targets.size()));
    entry.config.pinnedTargets = targets;
    entry.factors["alloc"] = key;
    entries.push_back(std::move(entry));
  }
  const auto cluster = entries.front().config.cluster;
  const auto store = harness::executeCampaign(entries, bench::protocolOptions(), 81, nullptr,
                                              bench::executorOptions("fig08"));

  core::AllocationAnalyzer analyzer;
  for (const auto& [key, targets] : placements) {
    for (const auto bw : store.metric("bandwidth_mibps", {{"alloc", key}})) {
      analyzer.add(core::Allocation(targets, cluster), bw);
    }
  }

  util::TableWriter table({"alloc", "min/max", "q1", "median", "q3", "whiskers", "mean"});
  std::map<std::string, double> means;
  for (const auto& group : analyzer.groups()) {
    means[group.key] = group.summary.mean;
    table.addRow({group.key, util::fmt(group.balanceRatio, 2), util::fmt(group.box.q1, 0),
                  util::fmt(group.box.median, 0), util::fmt(group.box.q3, 0),
                  util::fmt(group.box.whiskerLow, 0) + ".." +
                      util::fmt(group.box.whiskerHigh, 0),
                  util::fmt(group.summary.mean, 1)});
  }
  bench::printFigure("Fig. 8: Scenario 1 bandwidth by OST allocation (8 nodes x 8 ppn)",
                     table);
  {
    std::vector<stats::LabelledBox> boxRows;
    for (const auto& group : analyzer.groups()) {
      boxRows.push_back(stats::LabelledBox{group.key, group.box});
    }
    stats::PlotOptions plot;
    plot.xLabel = "MiB/s ([=M=] box, |--| whiskers, o outliers)";
    std::printf("%s\n", stats::renderBoxes(boxRows, plot).c_str());
  }
  store.writeCsv(bench::resultsPath("fig08.csv"));

  core::CheckList checks("Fig. 8 -- allocation vs bandwidth, Scenario 1");
  // Target count does not matter, only the split:
  checks.expectNear("(0,1) == (0,2)", means["(0,1)"], means["(0,2)"], 0.05);
  checks.expectNear("(0,2) == (0,4)", means["(0,2)"], means["(0,4)"], 0.05);
  checks.expectNear("(1,2) == (2,4)", means["(1,2)"], means["(2,4)"], 0.05);
  checks.expectNear("(1,1) == (3,3) == peak", means["(1,1)"], means["(3,3)"], 0.05);
  checks.expectNear("(2,2) == (4,4)", means["(2,2)"], means["(4,4)"], 0.05);
  // Performance increases with the balance ratio:
  checks.expectGreater("(1,3) > (0,3)", means["(1,3)"], means["(0,3)"]);
  checks.expectGreater("(1,2) > (1,3)", means["(1,2)"], means["(1,3)"]);
  checks.expectGreater("(2,3) > (1,2)", means["(2,3)"], means["(1,2)"]);
  checks.expectGreater("(1,1) > (2,3)", means["(1,1)"], means["(2,3)"]);
  checks.expect("balance-bandwidth correlation > 0.9",
                analyzer.balanceBandwidthCorrelation() > 0.9,
                util::fmt(analyzer.balanceBandwidthCorrelation(), 3));
  // Paper's headline numbers:
  checks.expectNear("single-server floor ~1100 MiB/s", means["(0,4)"], 1100.0, 0.08);
  checks.expectNear("balanced peak ~2200 MiB/s", means["(4,4)"], 2200.0, 0.08);
  checks.expectRatio("(3,3) beats (1,3) by ~49% (paper Sec. IV-C1)", means["(3,3)"],
                     means["(1,3)"], 1.49, 0.08);
  return bench::finish(checks);
}
