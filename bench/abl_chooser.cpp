// Ablation A1: target-choice heuristics on Scenario 1.
//
// Lesson #4 says a heuristic that picks the same number of targets on every
// server would be the best choice.  This ablation compares the deployed
// round-robin, BeeGFS' default random choice, a host-interleaved
// round-robin, and the balanced chooser, across stripe counts.
#include <map>

#include "bench/common.hpp"
#include "stats/summary.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const std::vector<std::pair<beegfs::ChooserKind, std::string>> choosers{
      {beegfs::ChooserKind::kRoundRobin, "round-robin (deployed)"},
      {beegfs::ChooserKind::kRandom, "random (BeeGFS default)"},
      {beegfs::ChooserKind::kRoundRobinInterleaved, "round-robin interleaved"},
      {beegfs::ChooserKind::kBalanced, "balanced (Lesson #4)"},
  };
  const std::vector<unsigned> counts{2, 4, 6, 8};

  std::vector<harness::CampaignEntry> entries;
  for (const auto& [kind, label] : choosers) {
    for (const auto count : counts) {
      harness::CampaignEntry entry;
      entry.config = bench::plafrimRun(topo::Scenario::kEthernet10G, 8, 8, count);
      entry.config.fs.chooser = kind;
      entry.factors["chooser"] = label;
      entry.factors["count"] = std::to_string(count);
      entries.push_back(std::move(entry));
    }
  }
  const auto store = harness::executeCampaign(entries, bench::protocolOptions(), 151, nullptr,
                                              bench::executorOptions("abl_chooser"));

  std::map<std::string, std::map<unsigned, stats::Summary>> results;
  util::TableWriter table({"chooser", "count", "mean MiB/s", "sd", "min", "max"});
  for (const auto& [kind, label] : choosers) {
    for (const auto count : counts) {
      const auto s = stats::summarize(store.metric(
          "bandwidth_mibps", {{"chooser", label}, {"count", std::to_string(count)}}));
      results[label][count] = s;
      table.addRow({label, std::to_string(count), util::fmt(s.mean, 1), util::fmt(s.sd, 1),
                    util::fmt(s.min, 1), util::fmt(s.max, 1)});
    }
  }
  bench::printFigure("Ablation A1: chooser heuristics, Scenario 1 (8 nodes x 8 ppn)", table);
  store.writeCsv(bench::resultsPath("abl_chooser.csv"));

  core::CheckList checks("Ablation A1 -- chooser heuristics");
  // Balanced chooser dominates at the problematic count 4.
  checks.expectGreater("balanced beats deployed RR at count 4 by >40%",
                       results["balanced (Lesson #4)"][4].mean,
                       1.4 * results["round-robin (deployed)"][4].mean);
  // The interleaved RR order would also have fixed count 4 ((2,2) windows).
  checks.expectNear("interleaved RR ~= balanced at count 4",
                    results["round-robin interleaved"][4].mean,
                    results["balanced (Lesson #4)"][4].mean, 0.05);
  // Random falls in between: better on average than deployed RR at count 4,
  // but with far higher spread (best case as likely as worst case).
  checks.expectGreater("random mean > deployed RR mean at count 4",
                       results["random (BeeGFS default)"][4].mean,
                       results["round-robin (deployed)"][4].mean);
  checks.expectGreater("random sd >> balanced sd at count 4",
                       results["random (BeeGFS default)"][4].sd,
                       3.0 * results["balanced (Lesson #4)"][4].sd);
  // At the maximum count all choosers coincide (every target used).
  checks.expectNear("all choosers equal at count 8",
                    results["round-robin (deployed)"][8].mean,
                    results["balanced (Lesson #4)"][8].mean, 0.03);
  return bench::finish(checks);
}
