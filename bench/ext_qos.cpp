// Extension: multi-tenant QoS -- token-bucket reservations with adaptive
// borrowing (DESIGN.md §2.8).
//
// Section IV-D shows concurrent applications sharing BeeGFS split bandwidth
// by flow count, not by entitlement: a wide job (many ranks) out-muscles a
// narrow one regardless of what either was promised.  This bench provisions
// 12-64 tenants, each promised an equal slice of the cluster: half are
// narrow interactive tenants (~5 s of reserved work) and half wide batch
// tenants (twice the node count and ~15 s of reserved work).
// The reservable budget self-calibrates to 92% of a measured saturation
// aggregate (a probe run with rank-proportional volumes, so every tenant
// spans the same window and Equation 1 reads the steady capacity).  Three
// regimes per tenant count:
//
//   * unmanaged:   plain sharing.  A wide tenant fields twice the
//                  concurrent flows of a narrow one, so the narrow half
//                  runs at ~2/3 of its promised slice and misses its SLO.
//   * qos:         per-tenant token buckets sized to the slice.  Everyone
//                  tracks the reservation, fairness (Jain over
//                  achieved/SLO) goes to ~1 and the violations vanish.  The
//                  cost: when the narrow tenants finish, the wide ones keep
//                  grinding at their reserved rate and the idle slices
//                  evaporate -- aggregate utilization drops well below the
//                  unmanaged run.
//   * qos+borrow:  the BorrowLedger pools the idle refill; the wide tenants
//                  draw it and recover >= 90% of the unmanaged aggregate
//                  without un-protecting anyone still inside its promise.
//
// Two variants at 32 tenants stress the accounting: a mid-run target outage
// (timeout -> retry -> failover must not double-spend tokens) and buddy
// mirroring (replica flows ride the primary's admission), the latter
// calibrated against its own mirrored saturation probe.
#include <algorithm>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "faults/schedule.hpp"
#include "qos/manager.hpp"
#include "stats/summary.hpp"
#include "util/json.hpp"

using namespace beesim;
using namespace beesim::util::literals;

namespace {

constexpr double kMiBd = static_cast<double>(util::kMiB);
constexpr double kBudgetFraction = 0.92;  // reservable share of the saturation probe
/// Reserved-work horizons: a tenant's volume is its SLO rate times this, so
/// the narrow half drains early and leaves idle slices to borrow.
constexpr double kNarrowHorizon = 5.0;
constexpr double kWideHorizon = 15.0;
constexpr double kSloTolerance = 0.90;  // achieved >= tolerance * SLO keeps the promise

struct TenantMix {
  std::size_t tenants = 0;
  std::size_t narrow = 0;
  std::size_t narrowNodes = 2;
  std::size_t wideNodes() const { return 2 * narrowNodes; }
  std::size_t wide() const { return tenants - narrow; }
  std::size_t nodes() const { return narrow * narrowNodes + wide() * wideNodes(); }
};

TenantMix mixFor(std::size_t tenants) {
  TenantMix mix;
  mix.tenants = tenants;
  mix.narrow = std::max<std::size_t>(1, tenants / 2);
  // Per-rank paced rates must stay below the contended per-flow service rate
  // or a tenant cannot physically consume its reservation (each rank keeps
  // one write in flight).  Slices shrink with the tenant count, so small
  // counts need wider jobs: ~48 nodes' worth of narrow ranks across the
  // narrow half keeps every per-rank rate comfortably low.
  mix.narrowNodes = std::max<std::size_t>(2, (48 + tenants - 1) / tenants);
  return mix;
}

ior::IorJob jobFor(const TenantMix& mix, std::size_t tenant, std::size_t* node) {
  const auto width = tenant < mix.narrow ? mix.narrowNodes : mix.wideNodes();
  ior::IorJob job;
  job.ppn = 8;
  for (std::size_t n = 0; n < width; ++n) job.nodeIds.push_back(*node + n);
  *node += width;
  return job;
}

/// The real workload: volume = SLO rate x horizon, so under QoS the narrow
/// half finishes around kNarrowHorizon and the wide rest around
/// kWideHorizon.  With `withQos` each tenant carries an explicit reservation
/// equal to its slice (burst defaults to one second at the rate).
std::vector<harness::AppSpec> tenantSpecs(const TenantMix& mix, double slice,
                                          bool withQos) {
  std::vector<harness::AppSpec> specs;
  std::size_t node = 0;
  for (std::size_t t = 0; t < mix.tenants; ++t) {
    harness::AppSpec spec;
    spec.job = jobFor(mix, t, &node);
    const double horizon = t < mix.narrow ? kNarrowHorizon : kWideHorizon;
    // Segmented writes (~4 MiB per segment, whole MiB blocks): each rank
    // chains many small writes instead of one huge one, so the run's tail is
    // one small chunk flow, not a straggling block-sized transfer.
    const double perRank = slice * horizon / static_cast<double>(spec.job.ranks());
    spec.ior.segments = std::max(1, static_cast<int>(perRank / 4.0 + 0.5));
    const auto blockMiB = std::max<util::Bytes>(
        1, static_cast<util::Bytes>(perRank / spec.ior.segments + 0.5));
    spec.ior.blockSize = blockMiB * util::kMiB;
    if (withQos) {
      qos::QosAppSpec qspec;
      qspec.rate = slice;
      spec.qos = qspec;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

enum class Leg { kUnmanaged, kQos, kBorrow };

const char* legName(Leg leg) {
  switch (leg) {
    case Leg::kUnmanaged: return "unmanaged";
    case Leg::kQos: return "qos";
    case Leg::kBorrow: return "qos+borrow";
  }
  return "?";
}

struct LegOutcome {
  double aggregate = 0.0;      // Equation-1 MiB/s, mean over reps
  double jainRaw = 0.0;        // Jain over achieved/SLO
  double jainSat = 0.0;        // Jain over min(achieved/SLO, 1): promise-keeping
  double violationRate = 0.0;  // tenants below kSloTolerance x SLO, fraction
  double narrowAchieved = 0.0;  // mean narrow-tenant bandwidth, MiB/s
  double borrowedMiB = 0.0;
  double reclaimedMiB = 0.0;
  double issuedMiB = 0.0;
  double deferrals = 0.0;
  double totalMiB = 0.0;  // logical bytes moved per rep
  bool anyFailed = false;
  bool chargeExact = true;  // issued tokens == logical bytes, every rep
};

struct LegConfig {
  Leg leg = Leg::kUnmanaged;
  bool mirror = false;
  std::string faultSchedule;  // empty = healthy
};

harness::RunConfig baseFor(const TenantMix& mix, const LegConfig& cfg, double slice) {
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G, mix.nodes());
  if (cfg.mirror) {
    base.fs.mirror.enabled = true;
    base.fs.defaultStripe.mirror = true;
  }
  if (!cfg.faultSchedule.empty()) {
    base.faults.schedule = faults::parseSchedule(cfg.faultSchedule);
    base.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
    base.fs.faults.ioTimeout = 0.5;
    base.fs.faults.backoffBase = 0.25;
    base.fs.faults.maxRetries = 1;
  }
  if (cfg.leg != Leg::kUnmanaged) {
    base.qos.enabled = true;
    base.qos.rate = slice;  // default; every app carries an explicit spec anyway
    base.qos.borrow = cfg.leg == Leg::kBorrow;
  }
  return base;
}

LegOutcome runLeg(const TenantMix& mix, const LegConfig& cfg, double slice,
                  std::size_t reps, std::uint64_t seedBase, std::ofstream& csv) {
  const auto specs = tenantSpecs(mix, slice, cfg.leg != Leg::kUnmanaged);
  const auto base = baseFor(mix, cfg, slice);
  const auto results = harness::parallelMap<harness::ConcurrentResult>(
      reps, bench::jobs(),
      [&](std::size_t rep) { return harness::runConcurrent(base, specs, seedBase + rep); });

  LegOutcome out;
  std::vector<double> aggregates;
  std::vector<double> jainRaw;
  std::vector<double> jainSat;
  std::vector<double> violations;
  std::vector<double> narrowAchieved;
  for (std::size_t rep = 0; rep < results.size(); ++rep) {
    const auto& result = results[rep];
    std::vector<double> raw;
    std::vector<double> sat;
    std::size_t violated = 0;
    double totalBytes = 0.0;
    double narrowSum = 0.0;
    for (std::size_t t = 0; t < specs.size(); ++t) {
      const double ratio = result.apps[t].bandwidth / slice;
      raw.push_back(ratio);
      sat.push_back(std::min(ratio, 1.0));
      if (ratio < kSloTolerance) ++violated;
      if (t < mix.narrow) narrowSum += result.apps[t].bandwidth;
      totalBytes += static_cast<double>(result.apps[t].totalBytes);
      out.anyFailed = out.anyFailed || result.apps[t].failed;
    }
    aggregates.push_back(result.aggregateBandwidth);
    jainRaw.push_back(stats::jainIndex(raw));
    jainSat.push_back(stats::jainIndex(sat));
    violations.push_back(static_cast<double>(violated) /
                         static_cast<double>(specs.size()));
    narrowAchieved.push_back(narrowSum / static_cast<double>(mix.narrow));
    out.totalMiB = totalBytes / kMiBd;
    if (result.qosActive) {
      out.issuedMiB += result.qos.tokensIssued / kMiBd;
      out.borrowedMiB += result.qos.tokensBorrowed / kMiBd;
      out.reclaimedMiB += result.qos.tokensReclaimed / kMiBd;
      out.deferrals += static_cast<double>(result.qos.deferrals);
      // Charge-once contract: tokens cover every logical byte exactly,
      // including reps where chunks timed out, failed over, or mirrored.
      if (result.qos.tokensIssued != totalBytes) out.chargeExact = false;
    }
    csv << mix.tenants << ',' << legName(cfg.leg) << ','
        << (cfg.mirror ? "mirror" : cfg.faultSchedule.empty() ? "healthy" : "fault")
        << ',' << rep << ',' << util::fmt(result.aggregateBandwidth, 2) << ','
        << util::fmt(jainRaw.back(), 4) << ',' << util::fmt(jainSat.back(), 4) << ','
        << util::fmt(violations.back(), 4) << ','
        << util::fmt(narrowAchieved.back(), 2) << ','
        << util::fmt(result.qos.tokensBorrowed / kMiBd, 1) << '\n';
  }
  const auto mean = [](const std::vector<double>& xs) {
    return stats::summarize(xs).mean;
  };
  out.aggregate = mean(aggregates);
  out.jainRaw = mean(jainRaw);
  out.jainSat = mean(jainSat);
  out.violationRate = mean(violations);
  out.narrowAchieved = mean(narrowAchieved);
  const double n = static_cast<double>(results.size());
  out.issuedMiB /= n;
  out.borrowedMiB /= n;
  out.reclaimedMiB /= n;
  out.deferrals /= n;
  return out;
}

/// Saturation probe: every rank writes the same volume, so all tenants span
/// the same window and the Equation-1 aggregate reads the cluster's steady
/// contended capacity.  That (not the lopsided-window aggregate of the real
/// workload) is the base the reservable budget calibrates from.
double saturationCapacity(const TenantMix& mix, const LegConfig& cfg,
                          std::size_t reps, std::uint64_t seedBase) {
  std::vector<harness::AppSpec> specs;
  std::size_t node = 0;
  for (std::size_t t = 0; t < mix.tenants; ++t) {
    harness::AppSpec spec;
    spec.job = jobFor(mix, t, &node);
    spec.ior.blockSize = 4_MiB;
    spec.ior.segments = 8;
    specs.push_back(std::move(spec));
  }
  const auto base = baseFor(mix, cfg, 0.0);
  const auto results = harness::parallelMap<harness::ConcurrentResult>(
      reps, bench::jobs(),
      [&](std::size_t rep) { return harness::runConcurrent(base, specs, seedBase + rep); });
  std::vector<double> aggregates;
  for (const auto& result : results) aggregates.push_back(result.aggregateBandwidth);
  return stats::summarize(aggregates).mean;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  // Each rep simulates up to ~100 GiB across up to 64 tenants; a dozen reps
  // pin the means down well (the protocol noise is mild at this scale).
  const auto reps = std::min<std::size_t>(bench::repetitions(), 12);

  std::ofstream csv(bench::resultsPath("ext_qos.csv"));
  csv << "tenants,leg,variant,rep,aggregate_mibps,jain_raw,jain_sat,violation_rate,"
         "narrow_mibps,borrowed_mib\n";

  const std::vector<std::size_t> tenantCounts{12, 32, 64};
  util::TableWriter table({"tenants", "leg", "aggregate", "vs unmanaged", "jain",
                           "jain(sat)", "slo viol %", "narrow MiB/s", "borrowed MiB"});
  util::JsonArray rows;

  std::map<std::size_t, std::map<std::string, LegOutcome>> outcomes;
  std::map<std::size_t, double> unmanagedAggregate;
  std::map<std::size_t, double> slices;
  for (const auto tenants : tenantCounts) {
    const auto mix = mixFor(tenants);
    const std::uint64_t seedBase = 41000 + 1000 * tenants;
    // Self-calibration: reserve 92% of what this mix saturates the cluster
    // at, split into equal per-tenant slices.
    const double capacity = saturationCapacity(mix, LegConfig{}, reps, seedBase);
    const double slice =
        kBudgetFraction * capacity / static_cast<double>(tenants);
    slices[tenants] = slice;

    for (const auto leg : {Leg::kUnmanaged, Leg::kQos, Leg::kBorrow}) {
      LegConfig cfg;
      cfg.leg = leg;
      const auto outcome = runLeg(mix, cfg, slice, reps,
                                  seedBase + 100 * static_cast<std::uint64_t>(leg), csv);
      outcomes[tenants][legName(leg)] = outcome;
      if (leg == Leg::kUnmanaged) unmanagedAggregate[tenants] = outcome.aggregate;
      const double baseline = unmanagedAggregate[tenants];
      table.addRow({std::to_string(tenants), legName(leg),
                    util::fmt(outcome.aggregate, 1),
                    util::fmt(outcome.aggregate / baseline, 3),
                    util::fmt(outcome.jainRaw, 3), util::fmt(outcome.jainSat, 3),
                    util::fmt(100.0 * outcome.violationRate, 1),
                    util::fmt(outcome.narrowAchieved, 1),
                    leg == Leg::kBorrow ? util::fmt(outcome.borrowedMiB, 1) : "-"});
      util::JsonObject row;
      row["tenants"] = static_cast<double>(tenants);
      row["leg"] = legName(leg);
      row["variant"] = "healthy";
      row["slice_mibps"] = slice;
      row["aggregate_mibps"] = outcome.aggregate;
      row["utilization_vs_unmanaged"] = outcome.aggregate / baseline;
      row["jain_raw"] = outcome.jainRaw;
      row["jain_sat"] = outcome.jainSat;
      row["violation_rate"] = outcome.violationRate;
      row["narrow_mibps"] = outcome.narrowAchieved;
      row["borrowed_mib"] = outcome.borrowedMiB;
      row["reclaimed_mib"] = outcome.reclaimedMiB;
      row["deferrals"] = outcome.deferrals;
      rows.push_back(util::JsonValue(std::move(row)));
    }
  }
  bench::printFigure("Ext: multi-tenant QoS, token buckets + adaptive borrowing (S2)",
                     table);

  // -- Stress variants at 32 tenants: mid-run outage, buddy mirroring. ------
  const auto mix32 = mixFor(32);
  LegConfig faultCfg;
  faultCfg.leg = Leg::kBorrow;
  faultCfg.faultSchedule = "off:t0@2;on:t0@6";
  const auto faultOutcome = runLeg(mix32, faultCfg, slices[32], reps, 91000, csv);

  LegConfig mirrorUnmanaged;
  mirrorUnmanaged.mirror = true;
  const double mirrorCapacity = saturationCapacity(mix32, mirrorUnmanaged, reps, 92000);
  const double mirrorSlice = kBudgetFraction * mirrorCapacity / 32.0;
  const auto mirrorUnmanagedOutcome =
      runLeg(mix32, mirrorUnmanaged, mirrorSlice, reps, 92000, csv);
  LegConfig mirrorCfg = mirrorUnmanaged;
  mirrorCfg.leg = Leg::kBorrow;
  const auto mirrorOutcome = runLeg(mix32, mirrorCfg, mirrorSlice, reps, 93000, csv);

  util::TableWriter stress({"variant", "leg", "aggregate", "jain(sat)", "slo viol %",
                            "charge-once"});
  const auto stressRow = [&](const std::string& variant, const char* leg,
                             const LegOutcome& outcome) {
    stress.addRow({variant, leg, util::fmt(outcome.aggregate, 1),
                   util::fmt(outcome.jainSat, 3),
                   util::fmt(100.0 * outcome.violationRate, 1),
                   outcome.chargeExact ? "exact" : "VIOLATED"});
    util::JsonObject row;
    row["tenants"] = 32.0;
    row["leg"] = leg;
    row["variant"] = variant;
    row["aggregate_mibps"] = outcome.aggregate;
    row["jain_sat"] = outcome.jainSat;
    row["violation_rate"] = outcome.violationRate;
    row["borrowed_mib"] = outcome.borrowedMiB;
    row["charge_exact"] = outcome.chargeExact;
    rows.push_back(util::JsonValue(std::move(row)));
  };
  stressRow("fault", "qos+borrow", faultOutcome);
  stressRow("mirror", "unmanaged", mirrorUnmanagedOutcome);
  stressRow("mirror", "qos+borrow", mirrorOutcome);
  bench::printFigure("Ext: QoS stress variants (32 tenants)", stress);

  core::CheckList checks("Ext -- multi-tenant QoS");
  for (const auto tenants : {32ul, 64ul}) {
    const auto& un = outcomes[tenants]["unmanaged"];
    const auto& qos = outcomes[tenants]["qos"];
    const auto& borrow = outcomes[tenants]["qos+borrow"];
    const auto tag = std::to_string(tenants) + " tenants: ";
    // The problem exists: plain sharing breaks the narrow half's promise...
    checks.expectGreater(tag + "unmanaged misses SLOs", un.violationRate, 0.2);
    checks.expectGreater(tag + "unmanaged crushes narrow tenants",
                         kSloTolerance * slices[tenants], un.narrowAchieved);
    // ...and managed sharing keeps it, fairly.
    checks.expectGreater(tag + "qos Jain >= 0.9", qos.jainRaw, 0.9);
    checks.expectGreater(tag + "qos fairer than unmanaged", qos.jainRaw, un.jainRaw);
    checks.expectGreater(tag + "qos cuts SLO violations",
                         un.violationRate, qos.violationRate + 0.15);
    checks.expectGreater(tag + "borrow cuts SLO violations",
                         un.violationRate, borrow.violationRate + 0.15);
    checks.expectGreater(tag + "borrow keeps promise fairness >= 0.9",
                         borrow.jainSat, 0.9);
    // Borrowing recovers the aggregate the plain throttle gives up.
    checks.expectGreater(tag + "borrowing engages (borrowed > 0)",
                         borrow.borrowedMiB, 0.0);
    checks.expectGreater(tag + "borrow beats plain qos aggregate",
                         borrow.aggregate, qos.aggregate);
    checks.expectGreater(tag + "borrow recovers >= 90% of unmanaged aggregate",
                         borrow.aggregate, 0.9 * unmanagedAggregate[tenants]);
    checks.expect(tag + "charge-once holds", qos.chargeExact && borrow.chargeExact,
                  "tokensIssued != logical bytes");
  }
  checks.expect("fault variant: no tenant aborts", !faultOutcome.anyFailed, "aborts");
  checks.expect("fault variant: retries/failovers never double-spend tokens",
                faultOutcome.chargeExact, "tokensIssued != logical bytes");
  checks.expect("fault variant: SLO violations stay at or below unmanaged",
                faultOutcome.violationRate <=
                    outcomes[32]["unmanaged"].violationRate + 1e-9,
                "outage pushed violations above the unmanaged rate");
  checks.expect("mirror variant: replica flows ride the primary admission",
                mirrorOutcome.chargeExact, "tokensIssued != logical bytes");
  checks.expectGreater("mirror variant: qos+borrow cuts mirrored SLO violations",
                       mirrorUnmanagedOutcome.violationRate,
                       mirrorOutcome.violationRate + 0.15);
  checks.expectGreater("mirror variant: borrow recovers >= 90% of mirrored unmanaged",
                       mirrorOutcome.aggregate,
                       0.9 * mirrorUnmanagedOutcome.aggregate);

  util::JsonObject doc;
  doc["benchmark"] = "qos";
  doc["reps"] = static_cast<double>(reps);
  doc["budget_fraction"] = kBudgetFraction;
  doc["rows"] = util::JsonValue(std::move(rows));
  {
    util::JsonObject recovery;
    for (const auto tenants : tenantCounts) {
      const auto& borrow = outcomes[tenants]["qos+borrow"];
      const auto& qos = outcomes[tenants]["qos"];
      const auto key = std::to_string(tenants);
      recovery["borrow_over_unmanaged_" + key] =
          borrow.aggregate / unmanagedAggregate[tenants];
      recovery["qos_over_unmanaged_" + key] =
          qos.aggregate / unmanagedAggregate[tenants];
    }
    doc["recovery"] = util::JsonValue(std::move(recovery));
  }
  {
    const char* out = std::getenv("BEESIM_BENCH_JSON");
    const std::string path = out != nullptr && *out != '\0' ? out : "BENCH_qos.json";
    std::ofstream file(path);
    file << util::JsonValue(std::move(doc)).dump(2) << "\n";
    std::printf("qos numbers written to %s\n", path.c_str());
  }
  return bench::finish(checks);
}
