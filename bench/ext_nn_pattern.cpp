// Extension: the paper's future-work direction -- the file-per-process
// (N-N) access pattern (Section VI: "Future work directions include ...
// other application access patterns, such as the file-per-process (N-N)
// strategy").
//
// With N-N, every rank creates its own file, so the *chooser* spreads many
// small stripes instead of one wide one.  Hypotheses this bench probes:
//   * with enough files, even small per-file stripe counts use all targets,
//     so N-N bandwidth is far less sensitive to the stripe count than N-1;
//   * N-N pays more metadata (one create per rank);
//   * at equal total load, N-N ~= N-1 once both cover all targets.
#include <map>

#include "bench/common.hpp"
#include "stats/summary.hpp"

using namespace beesim;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const std::vector<unsigned> counts{1, 2, 4, 8};
  std::vector<harness::CampaignEntry> entries;
  for (const auto pattern : {ior::AccessPattern::kSharedFile,
                             ior::AccessPattern::kFilePerProcess}) {
    for (const auto count : counts) {
      harness::CampaignEntry entry;
      entry.config = bench::plafrimRun(topo::Scenario::kOmniPath100G, 32, 8, count);
      entry.config.fs.chooser = beegfs::ChooserKind::kRandom;  // BeeGFS default
      entry.config.ior.pattern = pattern;
      entry.factors["pattern"] =
          pattern == ior::AccessPattern::kSharedFile ? "N-1" : "N-N";
      entry.factors["count"] = std::to_string(count);
      entries.push_back(std::move(entry));
    }
  }
  const auto store = harness::executeCampaign(entries, bench::protocolOptions(), 171, nullptr,
                                              bench::executorOptions("ext_nn_pattern"));

  std::map<std::string, std::map<unsigned, stats::Summary>> results;
  std::map<std::string, std::map<unsigned, double>> meta;
  util::TableWriter table(
      {"pattern", "stripe count", "mean MiB/s", "sd", "metadata (ms)"});
  for (const auto pattern : {"N-1", "N-N"}) {
    for (const auto count : counts) {
      const std::map<std::string, std::string> where{{"pattern", pattern},
                                                     {"count", std::to_string(count)}};
      results[pattern][count] = stats::summarize(store.metric("bandwidth_mibps", where));
      meta[pattern][count] =
          stats::summarize(store.metric("meta_seconds", where)).mean * 1000.0;
      table.addRow({pattern, std::to_string(count),
                    util::fmt(results[pattern][count].mean, 1),
                    util::fmt(results[pattern][count].sd, 1),
                    util::fmt(meta[pattern][count], 1)});
    }
  }
  bench::printFigure(
      "Extension: N-1 vs N-N (file per process), Scenario 2, 32 nodes x 8 ppn", table);
  store.writeCsv(bench::resultsPath("ext_nn.csv"));

  core::CheckList checks("Extension -- N-N access pattern");
  // N-1 with stripe 1 uses one target; N-N with stripe 1 spreads 256 files
  // over all eight: the count-1 gap is the headline difference.
  checks.expectGreater("N-N count 1 crushes N-1 count 1",
                       results["N-N"][1].mean, 2.5 * results["N-1"][1].mean);
  // N-N is insensitive to the per-file stripe count (coverage is already
  // full at count 1)...
  checks.expectNear("N-N count 8 ~= N-N count 1", results["N-N"][8].mean,
                    results["N-N"][1].mean, 0.15);
  // ...while N-1 depends on it strongly (Fig. 6b).
  checks.expectGreater("N-1 count 8 >> N-1 count 1", results["N-1"][8].mean,
                       3.0 * results["N-1"][1].mean);
  // At full coverage both patterns converge.
  checks.expectNear("N-1 count 8 ~= N-N count 8", results["N-1"][8].mean,
                    results["N-N"][8].mean, 0.15);
  // N-N pays more metadata (256 creates vs 1).
  checks.expectGreater("N-N metadata cost > N-1", meta["N-N"][4], meta["N-1"][4]);
  return bench::finish(checks);
}
