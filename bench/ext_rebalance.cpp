// Extension: closed-loop rebalancing vs. static allocation (DESIGN.md §2.6).
//
// The paper establishes that skewed (min,max) allocations cost bandwidth and
// recommends choosing balanced placements up front (Lesson #4).  This bench
// asks the follow-up question: when a run *starts* skewed -- a bad initial
// allocation, or a failover that piled every chunk onto the survivors -- can
// a controller that watches the live per-server rates claw the bandwidth
// back?  Two scenarios, both Scenario 1 (10 GbE, server links are the
// bottleneck), 8 nodes x 8 ppn, segmented writes so re-homed slots matter:
//
//   * skew: a stripe-4 file pinned to the paper's (1,3) split.  The
//     controller sees imbalance 1.5, engages, and migrates one slot from the
//     hot host to the cold one -- the effective allocation becomes (2,2).
//     Checks: recovered bandwidth within 10% of a static (2,2) run, above
//     the static (1,3) run, and above what the deployed round-robin or
//     random choosers average at stripe count 4.
//
//   * failover: a stripe-8 (4,4) file, host 0 crashes at 2 s and reboots at
//     3.5 s.  Degraded-stripe failover re-homes host-0 slots onto host-1
//     targets and those substitutes are sticky: without the controller the
//     run stays single-hosted after the reboot.  The controller migrates the
//     slots back.  Checks: beats the uncontrolled faulty run and lands
//     within 10% of the no-fault bandwidth.
#include <fstream>
#include <map>

#include "bench/common.hpp"
#include "control/rebalance.hpp"
#include "faults/schedule.hpp"
#include "stats/summary.hpp"
#include "util/json.hpp"

using namespace beesim;

namespace {

double meanOf(const std::vector<double>& values) {
  return values.empty() ? 0.0 : stats::summarize(values).mean;
}

/// Controller tuning: the CLI defaults except for the migration-stream cap.
/// The skew scenario needs to move one slot, so one stream at a time avoids
/// overshooting past balance; the failover scenario must re-home four slots
/// and each re-route only ships 1/8 of the traffic, so four streams converge
/// in a few samples without risk of flapping.
control::RebalancePolicy benchPolicy(int maxConcurrentMigrations) {
  control::RebalancePolicy policy;
  policy.enabled = true;
  policy.maxConcurrentMigrations = maxConcurrentMigrations;
  return policy;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  // Segmented writes (IOR -s): a rank's data moves as 32 sequential blocks,
  // so traffic issued after a slot is re-homed actually follows it.  With
  // one giant block every flow is in flight before the controller's first
  // sample and migration could not help.
  constexpr int kSegments = 32;

  std::vector<harness::CampaignEntry> entries;
  const auto push = [&](const std::string& part, const std::string& config,
                        const std::string& ctl, harness::CampaignEntry entry) {
    entry.factors["part"] = part;
    entry.factors["config"] = config;
    entry.factors["ctl"] = ctl;
    entries.push_back(std::move(entry));
  };
  const auto skewRun = [&](unsigned stripe) {
    harness::CampaignEntry entry;
    entry.config = bench::plafrimRun(topo::Scenario::kEthernet10G, 8, 8, stripe);
    entry.config.ior.blockSize /= kSegments;
    entry.config.ior.segments = kSegments;
    return entry;
  };

  // -- Part 1: skewed initial allocation. ---------------------------------
  {
    harness::CampaignEntry entry = skewRun(4);
    entry.config.pinnedTargets = std::vector<std::size_t>{0, 1, 4, 5};
    push("skew", "(2,2)", "off", std::move(entry));
  }
  {
    harness::CampaignEntry entry = skewRun(4);
    entry.config.pinnedTargets = std::vector<std::size_t>{0, 4, 5, 6};
    push("skew", "(1,3)", "off", std::move(entry));
  }
  {
    harness::CampaignEntry entry = skewRun(4);
    entry.config.pinnedTargets = std::vector<std::size_t>{0, 4, 5, 6};
    entry.config.rebalance = benchPolicy(1);
    push("skew", "(1,3)", "on", std::move(entry));
  }
  {
    harness::CampaignEntry entry = skewRun(4);
    entry.config.fs.chooser = beegfs::ChooserKind::kRoundRobin;
    push("skew", "rr", "off", std::move(entry));
  }
  {
    harness::CampaignEntry entry = skewRun(4);
    entry.config.fs.chooser = beegfs::ChooserKind::kRandom;
    push("skew", "random", "off", std::move(entry));
  }

  // -- Part 2: transient OSS crash leaves sticky substitutes. -------------
  const auto failoverRun = [&](bool fault, bool ctl) {
    harness::CampaignEntry entry = skewRun(8);
    entry.config.pinnedTargets = std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7};
    if (fault) {
      entry.config.faults.schedule = faults::parseSchedule("off:h0@2.0;on:h0@3.5");
      // Tuned client, as in ext_failures: fast detection, one retry, then
      // degraded-stripe failover.
      entry.config.fs.faults.mode = beegfs::ClientFaultPolicy::Mode::kDegraded;
      entry.config.fs.faults.ioTimeout = 0.5;
      entry.config.fs.faults.backoffBase = 0.25;
      entry.config.fs.faults.maxRetries = 1;
    }
    if (ctl) entry.config.rebalance = benchPolicy(4);
    return entry;
  };
  push("failover", "none", "off", failoverRun(false, false));
  push("failover", "fault", "off", failoverRun(true, false));
  push("failover", "fault", "on", failoverRun(true, true));

  const auto store = harness::executeCampaign(entries, bench::protocolOptions(), 271,
                                              nullptr,
                                              bench::executorOptions("ext_rebalance"));
  store.writeCsv(bench::resultsPath("ext_rebalance.csv"));

  const auto metric = [&](const std::string& name, const std::string& part,
                          const std::string& config, const std::string& ctl) {
    return meanOf(store.metric(
        name, {{"part", part}, {"config", config}, {"ctl", ctl}}));
  };
  const auto bw = [&](const std::string& part, const std::string& config,
                      const std::string& ctl) {
    return metric("bandwidth_mibps", part, config, ctl);
  };

  util::TableWriter table({"part", "config", "ctl", "bandwidth", "triggers",
                           "migrations", "migrated MiB", "peak imbalance"});
  for (const auto& entry : entries) {
    const auto part = entry.factors.at("part");
    const auto config = entry.factors.at("config");
    const auto ctl = entry.factors.at("ctl");
    const bool on = ctl == "on";
    table.addRow(
        {part, config, ctl, util::fmt(bw(part, config, ctl), 1),
         on ? util::fmt(metric("rebal_triggers", part, config, ctl), 2) : "-",
         on ? util::fmt(metric("rebal_migrations", part, config, ctl), 2) : "-",
         on ? util::fmt(metric("rebal_migrated_mib", part, config, ctl), 1) : "-",
         on ? util::fmt(metric("rebal_peak_imbalance", part, config, ctl), 3) : "-"});
  }
  bench::printFigure("Ext: closed-loop rebalancing vs static allocation (S1, 8x8)",
                     table);

  core::CheckList checks("Ext -- closed-loop rebalancing controller");
  // Part 1: the controller engages on the (1,3) skew and migrates.
  checks.expectGreater("skew: controller engages (triggers >= 1)",
                       metric("rebal_triggers", "skew", "(1,3)", "on"), 0.999);
  checks.expectGreater("skew: chunks migrate (migrations >= 1)",
                       metric("rebal_migrations", "skew", "(1,3)", "on"), 0.999);
  checks.expectGreater("skew: observed peak imbalance >= threshold",
                       metric("rebal_peak_imbalance", "skew", "(1,3)", "on"), 1.25);
  // Acceptance: recovered (1,3) lands within 10% of a static balanced run.
  checks.expectGreater("skew: recovered (1,3) >= 0.9 x static (2,2)",
                       bw("skew", "(1,3)", "on"), 0.9 * bw("skew", "(2,2)", "off"));
  checks.expectGreater("skew: recovered (1,3) > static (1,3)",
                       bw("skew", "(1,3)", "on"), bw("skew", "(1,3)", "off"));
  // ...and above what the static choosers average at stripe count 4.
  checks.expectGreater("skew: recovered (1,3) > deployed round-robin",
                       bw("skew", "(1,3)", "on"), bw("skew", "rr", "off"));
  checks.expectGreater("skew: recovered (1,3) > random chooser",
                       bw("skew", "(1,3)", "on"), bw("skew", "random", "off"));
  // Part 2: the crash hurts, sticky substitutes keep hurting, the
  // controller migrates the slots home.
  checks.expect("failover: no run aborts",
                metric("fault_aborted", "failover", "fault", "off") == 0.0 &&
                    metric("fault_aborted", "failover", "fault", "on") == 0.0,
                "aborted runs");
  checks.expectGreater("failover: crash costs bandwidth (none > fault)",
                       bw("failover", "none", "off"), bw("failover", "fault", "off"));
  checks.expectGreater("failover: controller engages (triggers >= 1)",
                       metric("rebal_triggers", "failover", "fault", "on"), 0.999);
  checks.expectGreater("failover: chunks migrate home (migrations >= 1)",
                       metric("rebal_migrations", "failover", "fault", "on"), 0.999);
  checks.expectGreater("failover: controller beats sticky substitutes",
                       bw("failover", "fault", "on"), bw("failover", "fault", "off"));
  checks.expectGreater("failover: recovered >= 0.9 x no-fault bandwidth",
                       bw("failover", "fault", "on"),
                       0.9 * bw("failover", "none", "off"));

  util::JsonObject doc;
  doc["benchmark"] = "rebalance";
  {
    util::JsonArray rows;
    for (const auto& entry : entries) {
      const auto part = entry.factors.at("part");
      const auto config = entry.factors.at("config");
      const auto ctl = entry.factors.at("ctl");
      util::JsonObject row;
      row["part"] = part;
      row["config"] = config;
      row["ctl"] = ctl;
      row["bandwidth_mibps"] = bw(part, config, ctl);
      if (ctl == "on") {
        row["rebal_triggers"] = metric("rebal_triggers", part, config, ctl);
        row["rebal_retargets"] = metric("rebal_retargets", part, config, ctl);
        row["rebal_migrations"] = metric("rebal_migrations", part, config, ctl);
        row["rebal_migrated_mib"] = metric("rebal_migrated_mib", part, config, ctl);
        row["rebal_migration_seconds"] =
            metric("rebal_migration_seconds", part, config, ctl);
        row["rebal_peak_imbalance"] =
            metric("rebal_peak_imbalance", part, config, ctl);
      }
      rows.push_back(util::JsonValue(std::move(row)));
    }
    doc["rows"] = util::JsonValue(std::move(rows));
  }
  {
    util::JsonObject recovery;
    recovery["skew_recovered_over_balanced"] =
        bw("skew", "(1,3)", "on") / bw("skew", "(2,2)", "off");
    recovery["skew_recovered_over_static"] =
        bw("skew", "(1,3)", "on") / bw("skew", "(1,3)", "off");
    recovery["failover_recovered_over_healthy"] =
        bw("failover", "fault", "on") / bw("failover", "none", "off");
    recovery["failover_recovered_over_static"] =
        bw("failover", "fault", "on") / bw("failover", "fault", "off");
    doc["recovery"] = util::JsonValue(std::move(recovery));
  }
  {
    const char* out = std::getenv("BEESIM_BENCH_JSON");
    const std::string path =
        out != nullptr && *out != '\0' ? out : "BENCH_rebalance.json";
    std::ofstream file(path);
    file << util::JsonValue(std::move(doc)).dump(2) << "\n";
    std::printf("rebalance numbers written to %s\n", path.c_str());
  }
  return bench::finish(checks);
}
