// Ablation A3: stripe (chunk) size and transfer size.
//
// The paper fixes the chunk size at PlaFRIM's 512 KiB and the transfer size
// at 1 MiB ("aligned to stripe size and large enough ... to require more
// than one OST to be accessed for each request"), then studies only the
// *count*.  This ablation justifies that choice: for large contiguous N-1
// writes, bytes-per-target is essentially independent of the chunk size, so
// bandwidth moves by at most a few percent across two orders of magnitude
// of chunk sizes -- the stripe count is where the performance lives.
#include <map>

#include "bench/common.hpp"
#include "stats/summary.hpp"

using namespace beesim;
using namespace beesim::util::literals;

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const std::vector<util::Bytes> chunkSizes{64_KiB, 256_KiB, 512_KiB, 1_MiB, 4_MiB};
  core::CheckList checks("Ablation A3 -- chunk size");

  for (const auto scenario : {topo::Scenario::kEthernet10G, topo::Scenario::kOmniPath100G}) {
    const bool s1 = scenario == topo::Scenario::kEthernet10G;
    const std::size_t nodes = s1 ? 8 : 32;

    std::vector<harness::CampaignEntry> entries;
    for (const auto chunk : chunkSizes) {
      harness::CampaignEntry entry;
      entry.config = bench::plafrimRun(scenario, nodes, 8, 4);
      entry.config.fs.defaultStripe.chunkSize = chunk;
      // Keep the paper's alignment rule: transfer = max(2 * chunk, 1 MiB).
      entry.config.ior.transferSize = std::max<util::Bytes>(2 * chunk, 1_MiB);
      entry.factors["chunk_kib"] = std::to_string(chunk / util::kKiB);
      entries.push_back(std::move(entry));
    }
    const auto store =
        harness::executeCampaign(entries, bench::protocolOptions(), s1 ? 191 : 192, nullptr,
                                 bench::executorOptions("abl_chunk_size"));

    util::TableWriter table({"chunk size", "mean MiB/s", "sd"});
    std::map<util::Bytes, double> means;
    for (const auto chunk : chunkSizes) {
      const auto s = stats::summarize(store.metric(
          "bandwidth_mibps", {{"chunk_kib", std::to_string(chunk / util::kKiB)}}));
      means[chunk] = s.mean;
      table.addRow({util::formatBytes(chunk), util::fmt(s.mean, 1), util::fmt(s.sd, 1)});
    }
    bench::printFigure(std::string("Ablation A3, ") + topo::scenarioLabel(scenario) +
                           " (stripe 4)",
                       table);

    const std::string tag = s1 ? " [S1]" : " [S2]";
    for (const auto chunk : chunkSizes) {
      checks.expectNear("chunk " + util::formatBytes(chunk) + " within 5% of 512 KiB" + tag,
                        means[chunk], means[512_KiB], 0.05);
    }
  }
  return bench::finish(checks);
}
