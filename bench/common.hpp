// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary regenerates one figure (or table) of the paper: it
// builds the experimental configurations, runs them under the paper's
// randomized-block protocol (100 repetitions by default; override with
// BEESIM_REPS for quick passes), prints the same rows/series the paper
// reports, writes the raw results as CSV next to the binary, and ends with
// the machine-checked shape assertions (core::CheckList).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "core/allocation.hpp"
#include "core/checks.hpp"
#include "harness/campaign.hpp"
#include "harness/concurrent.hpp"
#include "harness/executor.hpp"
#include "ior/options.hpp"
#include "topology/plafrim.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace beesim::bench {

namespace detail {
/// Mutable bench-wide settings, written once by parseArgs() before any
/// worker threads exist.
struct Settings {
  std::size_t jobs = harness::defaultJobs();
  std::size_t repsOverride = 0;  // 0 = use BEESIM_REPS / the paper's 100
  bool progress = false;
};
inline Settings& settings() {
  static Settings s;
  return s;
}
}  // namespace detail

/// Parse the shared bench flags:
///   --jobs N      worker threads (0 = all hardware threads); defaults to
///                 BEESIM_JOBS, else 1.  Results are identical for any N.
///   --reps N      repetitions per configuration (overrides BEESIM_REPS)
///   --progress    live status line on stderr (runs done, ETA, slowest config)
/// Call first thing in every bench main().
inline void parseArgs(int argc, char** argv) {
  try {
    const cli::Args args(std::vector<std::string>(argv + 1, argv + argc), {"progress"});
    auto& s = detail::settings();
    s.jobs = args.getUnsigned("jobs", s.jobs);
    s.repsOverride = args.getUnsigned("reps", 0);
    s.progress = args.getBool("progress") ||
                 [] {
                   const char* env = std::getenv("BEESIM_PROGRESS");
                   return env != nullptr && env[0] == '1';
                 }();
    const auto unused = args.unusedFlags();
    if (!unused.empty() || !args.positionals().empty()) {
      std::fprintf(stderr, "usage: %s [--jobs N] [--reps N] [--progress]\n", argv[0]);
      std::exit(2);
    }
  } catch (const util::Error& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    std::exit(2);
  }
}

/// Worker threads for campaign execution (see parseArgs / BEESIM_JOBS).
inline std::size_t jobs() { return detail::settings().jobs; }

/// Repetitions per configuration; the paper uses 100.  --reps and BEESIM_REPS
/// override (e.g. BEESIM_REPS=10 for a quick pass).
inline std::size_t repetitions() {
  if (const auto reps = detail::settings().repsOverride; reps >= 1) return reps;
  if (const char* env = std::getenv("BEESIM_REPS")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value >= 1) return static_cast<std::size_t>(value);
  }
  return 100;
}

/// Executor options for this bench process: --jobs worker threads plus the
/// stderr progress line when enabled.
inline harness::ExecutorOptions executorOptions(const std::string& label = "campaign") {
  harness::ExecutorOptions exec;
  exec.jobs = jobs();
  if (detail::settings().progress) exec.onProgress = harness::stderrProgress(label);
  return exec;
}

/// Protocol options used by all benches (paper Section III-C).
inline harness::ProtocolOptions protocolOptions() {
  harness::ProtocolOptions options;
  options.repetitions = repetitions();
  return options;
}

/// The paper's fixed total data size (Section III-B1).
inline constexpr util::Bytes kTotalData = 32ULL * util::kGiB;

/// A standard single-application configuration on PlaFRIM.
inline harness::RunConfig plafrimRun(topo::Scenario scenario, std::size_t nodes, int ppn,
                                     unsigned stripeCount, util::Bytes total = kTotalData) {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(scenario, nodes);
  config.fs.defaultStripe.stripeCount = stripeCount;
  config.job = ior::IorJob::onFirstNodes(nodes, ppn);
  config.ior.blockSize = ior::blockSizeForTotal(total, config.job.ranks());
  return config;
}

/// Row annotator adding the (min,max) allocation key of the run.
inline harness::RowAnnotator allocationAnnotator(const topo::ClusterConfig& cluster) {
  return [cluster](const harness::RunRecord& record, harness::ResultRow& row) {
    row.factors["alloc"] = core::Allocation(record.ior.targetsUsed, cluster).key();
  };
}

/// Print a rendered table plus a header line naming the figure.
inline void printFigure(const std::string& title, const util::TableWriter& table) {
  std::printf("==== %s ====\n%s\n", title.c_str(), table.render().c_str());
}

/// Print the checklist and return the process exit code (0 iff all passed).
inline int finish(const core::CheckList& checks) {
  std::fputs(checks.render().c_str(), stdout);
  return checks.allPassed() ? 0 : 1;
}

/// Where benches drop their raw CSVs (current directory by default,
/// override with BEESIM_RESULTS_DIR).
inline std::string resultsPath(const std::string& name) {
  const char* dir = std::getenv("BEESIM_RESULTS_DIR");
  return (dir != nullptr ? std::string(dir) : std::string(".")) + "/" + name;
}

}  // namespace beesim::bench
