// Figure 9: analytic time/bandwidth diagram for writing 32 GiB over two
// storage targets, balanced (1,1) vs unbalanced (0,2), when each server is
// reached through one link of bandwidth B.
//
// The balanced placement streams at 2B and finishes in half the time; the
// fluid simulator must agree with the closed form.
#include "bench/common.hpp"
#include "core/analytic.hpp"
#include "harness/run.hpp"

using namespace beesim;
using namespace beesim::util::literals;

namespace {

/// Noise-free fluid measurement of a pinned two-target write.
double fluidTime(const std::vector<std::size_t>& targets) {
  auto config = bench::plafrimRun(topo::Scenario::kEthernet10G, 8, 8, 2);
  config.cluster.network.serverLinkNoiseSigmaLog = 0.0;
  for (auto& host : config.cluster.hosts) {
    for (auto& target : host.targets) target.variability = topo::VariabilitySpec{};
  }
  config.fs.client.rampTau = 0.0;
  config.fs.meta = beegfs::MetaParams{0.0, 0.0, 0.0, 0.0};
  config.noise = harness::NoiseSpec{0.0, 0.0};
  config.pinnedTargets = targets;
  const auto record = harness::runOnce(config, 1);
  return record.ior.end - record.ior.start;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const double linkB = topo::PlafrimCalibration{}.s1ServerLink;
  const auto volume = bench::kTotalData;

  util::TableWriter table(
      {"placement", "rate (model)", "end time (model)", "end time (fluid)", "diff %"});
  core::CheckList checks("Fig. 9 -- balanced vs unbalanced two-target write");

  const auto balanced = core::twoTargetTimeline(volume, true, linkB);
  const auto unbalanced = core::twoTargetTimeline(volume, false, linkB);
  const double fluidBalanced = fluidTime({0, 4});
  const double fluidUnbalanced = fluidTime({4, 5});

  table.addRow({"(1,1) balanced", util::formatBandwidth(balanced[0].totalRate),
                util::formatSeconds(balanced[0].end), util::formatSeconds(fluidBalanced),
                util::fmt(100.0 * (fluidBalanced - balanced[0].end) / balanced[0].end, 2)});
  table.addRow({"(0,2) unbalanced", util::formatBandwidth(unbalanced[0].totalRate),
                util::formatSeconds(unbalanced[0].end), util::formatSeconds(fluidUnbalanced),
                util::fmt(100.0 * (fluidUnbalanced - unbalanced[0].end) / unbalanced[0].end,
                          2)});
  bench::printFigure("Fig. 9: writing " + util::formatBytes(volume) + " over two targets, B=" +
                         util::formatBandwidth(linkB),
                     table);

  checks.expectRatio("analytic: unbalanced takes 2x as long", unbalanced[0].end,
                     balanced[0].end, 2.0, 1e-9);
  checks.expectNear("fluid matches analytic, balanced", fluidBalanced, balanced[0].end, 0.02);
  checks.expectNear("fluid matches analytic, unbalanced", fluidUnbalanced, unbalanced[0].end,
                    0.02);
  checks.expectNear("both placements move the same volume",
                    balanced[0].totalRate * balanced[0].end,
                    unbalanced[0].totalRate * unbalanced[0].end, 1e-9);
  return bench::finish(checks);
}
