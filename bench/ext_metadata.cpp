// Extension: the metadata path as a first-class bottleneck (DESIGN.md §2.10).
//
// The paper deliberately minimizes metadata influence (one shared N-1 file,
// Section III-B) -- which is precisely why its allocation story says nothing
// about the regime where most real HPC pain lives: small files and high file
// counts, where the MDS/MDT path dominates end-to-end performance outright.
// This bench puts the queued MDS/MDT model through three campaigns:
//
//   * dominance:  one IOR bandwidth phase plus an mdtest phase (the IO500's
//                 bw-then-md shape) at shrinking data sizes.  The metadata
//                 wall time is volume-independent, so below a crossover
//                 data size the md phase owns the wall clock -- the Fig. 2
//                 left-side story told from the metadata side.
//   * sharding:   the same mdtest load over 1/2/4 hash-sharded MDTs.
//                 Per-directory hashing spreads per-rank working dirs, so
//                 metadata throughput scales with the MDT count (bounded by
//                 the hottest shard); round-robin placement is the perfect-
//                 spread upper bound on the same hardware.
//   * io500:      geometric-mean score sqrt(bw * md ops/s) across the
//                 paper's (1,3)/(2,2)/(4,4) OST allocations in both
//                 scenarios.  The md phase never touches OSTs, so the score
//                 preserves the paper's allocation ranking -- balanced
//                 placements win -- while the md term is allocation-
//                 invariant (same MDTs either way).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "ior/mdtest.hpp"
#include "stats/summary.hpp"
#include "util/json.hpp"

using namespace beesim;
using namespace beesim::util::literals;

namespace {

/// One configuration's outcome, averaged over the repetitions.
struct Outcome {
  double bandwidth = 0.0;   // IOR phase, MiB/s
  double iorSeconds = 0.0;  // IOR phase wall (incl. metadata window)
  double mdSeconds = 0.0;   // mdtest phase wall
  double mdOpsPerSec = 0.0;
  double mdImbalance = 0.0;
  double score = 0.0;       // IO500-style sqrt(bw * md ops/s)
  double mdFraction() const { return mdSeconds / (iorSeconds + mdSeconds); }
};

harness::RunConfig metadataConfig(topo::Scenario scenario, util::Bytes total,
                                  unsigned mdts, std::size_t filesPerRank,
                                  beegfs::MdShardKind shard) {
  auto config = bench::plafrimRun(scenario, 8, 8, 4, total);
  config.fs.meta.queued = true;
  config.fs.meta.mdtCount = mdts;
  config.fs.meta.shard = shard;
  ior::MdtestOptions md;
  md.filesPerRank = filesPerRank;
  config.mdtest = md;
  return config;
}

Outcome runOutcome(const harness::RunConfig& config, std::size_t reps,
                   std::uint64_t seedBase, const std::string& tag,
                   std::ofstream& csv) {
  const auto records = harness::parallelMap<harness::RunRecord>(
      reps, bench::jobs(),
      [&](std::size_t rep) { return harness::runOnce(config, seedBase + rep); });
  Outcome out;
  std::vector<double> bw, iorSec, mdSec, mdOps, mdImb, score;
  for (std::size_t rep = 0; rep < records.size(); ++rep) {
    const auto& r = records[rep];
    bw.push_back(r.ior.bandwidth);
    iorSec.push_back(r.ior.end - r.ior.start);
    mdSec.push_back(r.md.end - r.md.start);
    mdOps.push_back(r.md.opsPerSec);
    mdImb.push_back(r.md.mdtImbalance);
    score.push_back(std::sqrt(r.ior.bandwidth * r.md.opsPerSec));
    csv << tag << ',' << rep << ',' << util::fmt(r.ior.bandwidth, 2) << ','
        << util::fmt(iorSec.back(), 4) << ',' << util::fmt(mdSec.back(), 4) << ','
        << util::fmt(r.md.opsPerSec, 1) << ',' << util::fmt(r.md.mdtImbalance, 3)
        << ',' << util::fmt(score.back(), 2) << '\n';
  }
  const auto mean = [](const std::vector<double>& xs) { return stats::summarize(xs).mean; };
  out.bandwidth = mean(bw);
  out.iorSeconds = mean(iorSec);
  out.mdSeconds = mean(mdSec);
  out.mdOpsPerSec = mean(mdOps);
  out.mdImbalance = mean(mdImb);
  out.score = mean(score);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  // Each rep runs a bandwidth phase plus ~12k metadata ops; 10 reps pin the
  // means down well (the md phase is deterministic up to per-op jitter).
  const auto reps = std::min<std::size_t>(bench::repetitions(), 10);

  std::ofstream csv(bench::resultsPath("ext_metadata.csv"));
  csv << "config,rep,bandwidth_mibps,ior_seconds,md_seconds,md_ops_s,"
         "md_mdt_imbalance,score\n";
  util::JsonArray rows;

  // -- Part 1: metadata dominance at small data sizes. -----------------------
  const std::vector<util::Bytes> totals{256_MiB, 2_GiB, 32_GiB};
  std::map<util::Bytes, Outcome> dominance;
  util::TableWriter domTable(
      {"total", "bw MiB/s", "ior s", "md s", "md fraction", "md ops/s"});
  for (const auto total : totals) {
    const auto config = metadataConfig(topo::Scenario::kOmniPath100G, total, 1, 64,
                                       beegfs::MdShardKind::kHashDir);
    const auto out = runOutcome(config, reps, 51000 + total % 4096,
                                "dominance/" + util::formatBytes(total), csv);
    dominance[total] = out;
    domTable.addRow({util::formatBytes(total), util::fmt(out.bandwidth, 0),
                     util::fmt(out.iorSeconds, 2), util::fmt(out.mdSeconds, 2),
                     util::fmt(out.mdFraction(), 3), util::fmt(out.mdOpsPerSec, 0)});
    util::JsonObject row;
    row["part"] = "dominance";
    row["total_mib"] = static_cast<double>(util::toMiB(total));
    row["bandwidth_mibps"] = out.bandwidth;
    row["ior_seconds"] = out.iorSeconds;
    row["md_seconds"] = out.mdSeconds;
    row["md_fraction"] = out.mdFraction();
    row["md_ops_s"] = out.mdOpsPerSec;
    rows.push_back(util::JsonValue(std::move(row)));
  }
  bench::printFigure(
      "Ext: metadata dominance, IOR + mdtest (64 files/rank, 1 MDT, S2)", domTable);

  // -- Part 2: MDT sharding scales metadata throughput. ----------------------
  const std::vector<unsigned> mdtCounts{1, 2, 4};
  std::map<unsigned, Outcome> sharded;
  util::TableWriter shardTable(
      {"mdts", "shard", "md ops/s", "speedup", "mdt imbalance"});
  for (const auto mdts : mdtCounts) {
    const auto config = metadataConfig(topo::Scenario::kOmniPath100G, 256_MiB, mdts,
                                       128, beegfs::MdShardKind::kHashDir);
    const auto out = runOutcome(config, reps, 52000 + mdts,
                                "shard/hash" + std::to_string(mdts), csv);
    sharded[mdts] = out;
    shardTable.addRow({std::to_string(mdts), "hash", util::fmt(out.mdOpsPerSec, 0),
                       util::fmt(out.mdOpsPerSec / sharded[1].mdOpsPerSec, 2),
                       util::fmt(out.mdImbalance, 2)});
    util::JsonObject row;
    row["part"] = "sharding";
    row["mdts"] = static_cast<double>(mdts);
    row["shard"] = "hash";
    row["md_ops_s"] = out.mdOpsPerSec;
    row["md_mdt_imbalance"] = out.mdImbalance;
    rows.push_back(util::JsonValue(std::move(row)));
  }
  // Round-robin on 4 MDTs: the perfect-spread upper bound for the same load.
  const auto rrConfig = metadataConfig(topo::Scenario::kOmniPath100G, 256_MiB, 4, 128,
                                       beegfs::MdShardKind::kRoundRobin);
  const auto rr = runOutcome(rrConfig, reps, 52100, "shard/rr4", csv);
  shardTable.addRow({"4", "rr", util::fmt(rr.mdOpsPerSec, 0),
                     util::fmt(rr.mdOpsPerSec / sharded[1].mdOpsPerSec, 2),
                     util::fmt(rr.mdImbalance, 2)});
  {
    util::JsonObject row;
    row["part"] = "sharding";
    row["mdts"] = 4.0;
    row["shard"] = "rr";
    row["md_ops_s"] = rr.mdOpsPerSec;
    row["md_mdt_imbalance"] = rr.mdImbalance;
    rows.push_back(util::JsonValue(std::move(row)));
  }
  bench::printFigure("Ext: MDT sharding, mdtest 128 files/rank (64 ranks, S2)",
                     shardTable);

  // -- Part 3: IO500-style score across the paper's allocations. -------------
  const std::map<std::string, std::vector<std::size_t>> placements{
      {"(1,3)", {0, 4, 5, 6}},
      {"(2,2)", {0, 1, 4, 5}},
      {"(4,4)", {0, 1, 2, 3, 4, 5, 6, 7}},
  };
  const std::map<std::string, topo::Scenario> scenarios{
      {"S1", topo::Scenario::kEthernet10G},
      {"S2", topo::Scenario::kOmniPath100G},
  };
  std::map<std::string, std::map<std::string, Outcome>> io500;
  util::TableWriter ioTable(
      {"scenario", "alloc", "bw MiB/s", "md ops/s", "score", "vs (1,3)"});
  for (const auto& [sname, scenario] : scenarios) {
    for (const auto& [alloc, targets] : placements) {
      auto config = metadataConfig(scenario, 8_GiB, 2, 64,
                                   beegfs::MdShardKind::kHashDir);
      config.fs.defaultStripe.stripeCount = static_cast<unsigned>(targets.size());
      config.pinnedTargets = targets;
      const auto out =
          runOutcome(config, reps, 53000 + 100 * (sname == "S2" ? 1 : 0) + targets.size(),
                     "io500/" + sname + alloc, csv);
      io500[sname][alloc] = out;
      ioTable.addRow({sname, alloc, util::fmt(out.bandwidth, 0),
                      util::fmt(out.mdOpsPerSec, 0), util::fmt(out.score, 1),
                      util::fmt(out.score / io500[sname]["(1,3)"].score, 3)});
      util::JsonObject row;
      row["part"] = "io500";
      row["scenario"] = sname;
      row["alloc"] = alloc;
      row["bandwidth_mibps"] = out.bandwidth;
      row["md_ops_s"] = out.mdOpsPerSec;
      row["score"] = out.score;
      rows.push_back(util::JsonValue(std::move(row)));
    }
  }
  bench::printFigure(
      "Ext: IO500-style score sqrt(bw x md) by OST allocation (8 nodes x 8 ppn)",
      ioTable);

  core::CheckList checks("Ext -- metadata path (queued MDS/MDT, mdtest, IO500)");
  // Part 1: the md wall time is volume-independent, so it owns the clock at
  // small data sizes and recedes at the paper's 32 GiB.
  checks.expectGreater("256 MiB: metadata dominates (md fraction > 0.6)",
                       dominance[256_MiB].mdFraction(), 0.6);
  checks.expectGreater("md fraction falls as data grows",
                       dominance[256_MiB].mdFraction(),
                       dominance[32_GiB].mdFraction());
  checks.expectGreater("32 GiB: bandwidth phase dominates (md fraction < 0.5)",
                       0.5, dominance[32_GiB].mdFraction());
  checks.expectNear("md wall time is volume-invariant",
                    dominance[256_MiB].mdSeconds, dominance[32_GiB].mdSeconds, 0.15);
  // Part 2: sharding scales the metadata path.
  checks.expectGreater("2 MDTs >= 1.4x the 1-MDT throughput",
                       sharded[2].mdOpsPerSec, 1.4 * sharded[1].mdOpsPerSec);
  checks.expectGreater("4 MDTs >= 2.2x the 1-MDT throughput",
                       sharded[4].mdOpsPerSec, 2.2 * sharded[1].mdOpsPerSec);
  checks.expectGreater("4 MDTs beat 2 MDTs", sharded[4].mdOpsPerSec,
                       sharded[2].mdOpsPerSec);
  checks.expectGreater("round-robin is the spread upper bound (ops/s)",
                       rr.mdOpsPerSec, 0.99 * sharded[4].mdOpsPerSec);
  checks.expectGreater("hash sharding leaves residual imbalance vs rr",
                       sharded[4].mdImbalance, rr.mdImbalance - 1e-9);
  // Part 3: the combined score preserves the paper's allocation ranking in
  // both scenarios, and the md term is allocation-invariant.
  for (const auto& [sname, outcomes] : io500) {
    checks.expectGreater(sname + ": score (2,2) > (1,3)", outcomes.at("(2,2)").score,
                         outcomes.at("(1,3)").score);
    checks.expectGreater(sname + ": score (4,4) > (1,3)", outcomes.at("(4,4)").score,
                         outcomes.at("(1,3)").score);
    if (sname == "S1") {
      // Network-bound scenario: the server NICs cap both balanced
      // placements, so target count washes out ((2,2) == (4,4), Fig. 8).
      checks.expectNear(sname + ": balanced scores agree ((2,2) ~ (4,4))",
                        outcomes.at("(2,2)").score, outcomes.at("(4,4)").score, 0.10);
    } else {
      // Storage-bound scenario: doubling the targets of a balanced
      // placement raises the bandwidth term, and the score follows.
      checks.expectGreater(sname + ": score (4,4) > (2,2)",
                           outcomes.at("(4,4)").score, outcomes.at("(2,2)").score);
    }
    double mdMin = 1e300;
    double mdMax = 0.0;
    for (const auto& [alloc, out] : outcomes) {
      mdMin = std::min(mdMin, out.mdOpsPerSec);
      mdMax = std::max(mdMax, out.mdOpsPerSec);
    }
    checks.expectNear(sname + ": md throughput is allocation-invariant", mdMax, mdMin,
                      0.10);
  }

  util::JsonObject doc;
  doc["benchmark"] = "metadata";
  doc["reps"] = static_cast<double>(reps);
  doc["rows"] = util::JsonValue(std::move(rows));
  {
    util::JsonObject summary;
    summary["md_fraction_256mib"] = dominance[256_MiB].mdFraction();
    summary["md_fraction_32gib"] = dominance[32_GiB].mdFraction();
    summary["shard_speedup_2"] = sharded[2].mdOpsPerSec / sharded[1].mdOpsPerSec;
    summary["shard_speedup_4"] = sharded[4].mdOpsPerSec / sharded[1].mdOpsPerSec;
    summary["score_s2_44_over_13"] =
        io500["S2"]["(4,4)"].score / io500["S2"]["(1,3)"].score;
    doc["summary"] = util::JsonValue(std::move(summary));
  }
  {
    const char* out = std::getenv("BEESIM_BENCH_JSON");
    const std::string path =
        out != nullptr && *out != '\0' ? out : "BENCH_metadata.json";
    std::ofstream file(path);
    file << util::JsonValue(std::move(doc)).dump(2) << "\n";
    std::printf("metadata numbers written to %s\n", path.c_str());
  }
  return bench::finish(checks);
}
