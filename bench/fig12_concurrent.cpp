// Figure 12: concurrent applications (2, 3, 4) with different numbers of
// OSTs per application, compared against single-application executions with
// the equivalent total resources.
//
// Paper findings: the aggregate bandwidth (Equation 1) of k concurrent
// applications matches -- or slightly exceeds -- a single application using
// k times the nodes; individual per-app bandwidth drops because the total is
// *shared*, not because targets are shared (Section IV-D).
#include <map>

#include "bench/common.hpp"
#include "stats/summary.hpp"

using namespace beesim;
using namespace beesim::util::literals;

namespace {

/// k concurrent apps, 8 nodes x 8 ppn each, `count` OSTs per app (pinned so
/// target overlap is controlled); each app writes 32 GiB.
harness::ConcurrentResult runApps(int k, unsigned count, std::uint64_t seed) {
  harness::RunConfig base;
  base.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G,
                                   static_cast<std::size_t>(k) * 8);
  base.fs.defaultStripe.stripeCount = count;

  std::vector<harness::AppSpec> apps(static_cast<std::size_t>(k));
  for (int a = 0; a < k; ++a) {
    auto& app = apps[static_cast<std::size_t>(a)];
    app.job.ppn = 8;
    for (std::size_t n = 0; n < 8; ++n) {
      app.job.nodeIds.push_back(static_cast<std::size_t>(a) * 8 + n);
    }
    app.ior.blockSize = ior::blockSizeForTotal(32_GiB, app.job.ranks());
    // Pinned allocations mirroring the paper's round-robin outcomes:
    // count 2 -> disjoint balanced pairs (apps never share);
    // count 4 -> the two RR (1,3) windows, so apps 0/2 and 1/3 share;
    // count 8 -> everyone shares all targets.
    if (count == 2) {
      const std::size_t i = static_cast<std::size_t>(a) % 4;
      app.pinnedTargets = std::vector<std::size_t>{i, 4 + i};
    } else if (count == 4) {
      app.pinnedTargets = (a % 2 == 0) ? std::vector<std::size_t>{0, 4, 5, 6}
                                       : std::vector<std::size_t>{7, 1, 2, 3};
    } else {
      app.pinnedTargets = std::vector<std::size_t>{0, 1, 2, 3, 4, 5, 6, 7};
    }
  }
  return harness::runConcurrent(base, apps, seed);
}

/// Single application with the equivalent total resources: k*8 nodes and
/// min(8, k*count) OSTs, writing k*32 GiB.
double runSingleBaseline(int k, unsigned count, std::uint64_t seed) {
  harness::RunConfig config;
  config.cluster = topo::makePlafrim(topo::Scenario::kOmniPath100G,
                                     static_cast<std::size_t>(k) * 8);
  const unsigned totalCount = std::min(8u, static_cast<unsigned>(k) * count);
  config.fs.defaultStripe.stripeCount = totalCount;
  config.fs.chooser = beegfs::ChooserKind::kBalanced;
  config.job = ior::IorJob::onFirstNodes(static_cast<std::size_t>(k) * 8, 8);
  config.ior.blockSize =
      ior::blockSizeForTotal(static_cast<util::Bytes>(k) * 32_GiB, config.job.ranks());
  return harness::runOnce(config, seed).ior.bandwidth;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parseArgs(argc, argv);
  const auto reps = bench::repetitions();
  core::CheckList checks("Fig. 12 -- concurrent applications");

  for (const int k : {2, 3, 4}) {
    util::TableWriter table({"OSTs/app", "per-app mean MiB/s", "aggregate (Eq.1)",
                             "single-app baseline", "agg/baseline", "shared targets"});
    for (const unsigned count : {2u, 4u, 8u}) {
      // Repetitions are seed-isolated: map them across workers and fold the
      // outcomes in rep order, identical for any --jobs.
      struct RepOutcome {
        harness::ConcurrentResult concurrent;
        double baseline = 0.0;
      };
      const auto outcomes = harness::parallelMap<RepOutcome>(
          reps, bench::jobs(), [&](std::size_t rep) {
            const auto seed = 12000 + 1000 * static_cast<std::uint64_t>(k) + 100 * count + rep;
            return RepOutcome{runApps(k, count, seed), runSingleBaseline(k, count, seed + 7)};
          });

      std::vector<double> aggregates;
      std::vector<double> perApp;
      std::vector<double> baselines;
      double sharedTargets = 0.0;
      for (const auto& outcome : outcomes) {
        aggregates.push_back(outcome.concurrent.aggregateBandwidth);
        for (const auto& app : outcome.concurrent.apps) perApp.push_back(app.bandwidth);
        sharedTargets += static_cast<double>(outcome.concurrent.sharedTargets);
        baselines.push_back(outcome.baseline);
      }
      const double aggregate = stats::summarize(aggregates).mean;
      const double baseline = stats::summarize(baselines).mean;
      const double app = stats::summarize(perApp).mean;
      table.addRow({std::to_string(count), util::fmt(app, 1), util::fmt(aggregate, 1),
                    util::fmt(baseline, 1), util::fmt(aggregate / baseline, 3),
                    util::fmt(sharedTargets / static_cast<double>(reps), 1)});

      const std::string tag =
          " [" + std::to_string(k) + " apps x " + std::to_string(count) + " OSTs]";
      // Aggregate tracks the single-application baseline.
      checks.expectNear("aggregate ~= single-app baseline" + tag, aggregate, baseline,
                        0.15);
      // Individual applications run slower than the aggregate (they share).
      checks.expectGreater("per-app < aggregate" + tag, aggregate, 1.2 * app);
    }
    bench::printFigure("Fig. 12 (" + std::to_string(k) + " concurrent applications)", table);
  }
  return bench::finish(checks);
}
